/**
 * @file
 * Bootstrap-aggregated regression forest.
 *
 * The paper fits the crosstalk-vs-equivalent-distance relationship with a
 * random forest; this is that estimator, built on DecisionTree. With the
 * low-dimensional feature spaces used here (1-2 features), randomization
 * comes from bootstrap resampling rather than feature subsetting.
 */

#ifndef YOUTIAO_NOISE_RANDOM_FOREST_HPP
#define YOUTIAO_NOISE_RANDOM_FOREST_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/prng.hpp"
#include "noise/decision_tree.hpp"

namespace youtiao {

/** Hyper-parameters of the forest. */
struct RandomForestConfig
{
    std::size_t treeCount = 40;
    DecisionTreeConfig tree;
    /** Fraction of samples drawn (with replacement) per tree. */
    double bootstrapFraction = 1.0;
};

/** Averaging ensemble of bootstrap-trained regression trees. */
class RandomForest
{
  public:
    explicit RandomForest(RandomForestConfig config = {});

    /**
     * Fit @p tree_count trees on bootstrap resamples of the training set.
     * Deterministic given @p prng.
     */
    void fit(std::span<const double> features, std::size_t feature_count,
             std::span<const double> targets, Prng &prng);

    /** Mean prediction across trees for one feature row. */
    double predict(std::span<const double> row) const;

    /**
     * Mean prediction for every row of @p features (row-major,
     * out.size() x feature_count), parallelized over row blocks. Each
     * row's trees are summed in tree order into a per-row slot, so the
     * result is bit-identical to calling predict() per row at any
     * YOUTIAO_THREADS setting.
     */
    void predictBatch(std::span<const double> features,
                      std::size_t feature_count,
                      std::span<double> out) const;

    bool trained() const { return !trees_.empty(); }
    std::size_t treeCount() const { return trees_.size(); }

  private:
    /** Build the per-tree interval tables backing the single-feature
     *  batch path; called by fit() when featureCount_ == 1. */
    void buildSingleFeatureTables();

    /** Merge-based batch prediction over rows [begin, end): sorts the
     *  block by feature value and sweeps each tree's interval table
     *  once. Requires the tables and NaN-free inputs; bit-identical to
     *  the per-row walk. */
    void predictMergeRange(std::span<const double> features,
                           std::span<double> out, std::size_t begin,
                           std::size_t end) const;

    RandomForestConfig config_;
    std::vector<DecisionTree> trees_;
    /** SoA node pool built at the end of fit(); predict walks this. */
    FlatTreeNodes flat_;
    std::vector<std::uint32_t> roots_;
    std::size_t featureCount_ = 0;
    /**
     * Single-feature interval tables (CSR over trees), built by fit()
     * when featureCount_ == 1: a one-feature tree partitions the line
     * at its in-order internal thresholds, so tree t maps x to
     * leafValues_[leafOffsets_[t] + #(splits of t < x)]. The batch
     * kernel sweeps these tables instead of walking node chains.
     */
    std::vector<std::size_t> splitOffsets_, leafOffsets_;
    std::vector<double> splitPoints_, leafValues_;
};

} // namespace youtiao

#endif // YOUTIAO_NOISE_RANDOM_FOREST_HPP
