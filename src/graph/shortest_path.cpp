#include "graph/shortest_path.hpp"

#include <queue>
#include <string>

#include "common/error.hpp"

namespace youtiao {

namespace {

// Cap multiplicities so n * l cannot overflow even on large lattices where
// the central pair may have combinatorially many shortest paths.
constexpr std::size_t kPathCountCap = 1u << 20;

} // namespace

MultiPathResult
multiPathBfs(const Graph &g, std::size_t source)
{
    requireConfig(source < g.vertexCount(), "BFS source out of range");
    MultiPathResult result;
    result.hops.assign(g.vertexCount(), kUnreachable);
    result.pathCount.assign(g.vertexCount(), 0);
    result.hops[source] = 0;
    result.pathCount[source] = 1;

    std::queue<std::size_t> frontier;
    frontier.push(source);
    while (!frontier.empty()) {
        const std::size_t v = frontier.front();
        frontier.pop();
        for (const Incidence &inc : g.incidences(v)) {
            const std::size_t n = inc.vertex;
            if (result.hops[n] == kUnreachable) {
                result.hops[n] = result.hops[v] + 1;
                result.pathCount[n] = result.pathCount[v];
                frontier.push(n);
            } else if (result.hops[n] == result.hops[v] + 1) {
                result.pathCount[n] = std::min(
                    kPathCountCap,
                    result.pathCount[n] + result.pathCount[v]);
            }
        }
    }
    return result;
}

std::size_t
hopDistance(const Graph &g, std::size_t from, std::size_t to)
{
    requireConfig(to < g.vertexCount(), "BFS target out of range");
    return multiPathBfs(g, from).hops[to];
}

std::size_t
multiPathDistance(const Graph &g, std::size_t from, std::size_t to)
{
    requireConfig(to < g.vertexCount(), "target out of range");
    const MultiPathResult bfs = multiPathBfs(g, from);
    if (bfs.hops[to] == kUnreachable)
        return kUnreachable;
    return bfs.hops[to] * bfs.pathCount[to];
}

std::vector<std::vector<std::size_t>>
allPairsMultiPathDistance(const Graph &g)
{
    std::vector<std::vector<std::size_t>> table(g.vertexCount());
    for (std::size_t src = 0; src < g.vertexCount(); ++src) {
        const MultiPathResult bfs = multiPathBfs(g, src);
        table[src].resize(g.vertexCount());
        for (std::size_t dst = 0; dst < g.vertexCount(); ++dst) {
            table[src][dst] = bfs.hops[dst] == kUnreachable
                                  ? kUnreachable
                                  : bfs.hops[dst] * bfs.pathCount[dst];
        }
    }
    return table;
}

std::vector<double>
dijkstra(const Graph &g, std::size_t source)
{
    requireConfig(source < g.vertexCount(), "Dijkstra source out of range");
    constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(g.vertexCount(), inf);
    dist[source] = 0.0;

    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        if (d > dist[v])
            continue;
        for (const Incidence &inc : g.incidences(v)) {
            const std::size_t n = inc.vertex;
            const double w = g.edge(inc.edge).weight;
            requireConfig(w >= 0.0,
                          "Dijkstra requires non-negative edge weights");
            if (dist[v] + w < dist[n]) {
                dist[n] = dist[v] + w;
                heap.emplace(dist[n], n);
            }
        }
    }
    return dist;
}

} // namespace youtiao
