/**
 * @file
 * Greedy graph-coloring utilities.
 *
 * TDM grouping (paper Section 4.3) is a constrained coloring problem:
 * devices that may need to operate in parallel must receive different
 * colors (DEMUX groups). These helpers provide the generic coloring core;
 * the multiplex module layers the parallelism-index ordering and capacity
 * constraints on top.
 */

#ifndef YOUTIAO_GRAPH_COLORING_HPP
#define YOUTIAO_GRAPH_COLORING_HPP

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace youtiao {

/**
 * Greedy coloring in the given vertex order: each vertex gets the smallest
 * color not used by an already-colored neighbour. Returns one color per
 * vertex. With @p order empty, uses index order.
 */
std::vector<std::size_t> greedyColoring(
    const Graph &conflict, const std::vector<std::size_t> &order = {});

/**
 * Greedy coloring where each color class holds at most @p capacity
 * vertices. A vertex skips colors that are full or conflict-adjacent.
 */
std::vector<std::size_t> greedyColoringCapped(
    const Graph &conflict, std::size_t capacity,
    const std::vector<std::size_t> &order = {});

/** Number of distinct colors in an assignment. */
std::size_t colorCount(const std::vector<std::size_t> &colors);

/** True when no edge of @p conflict joins two same-colored vertices. */
bool isProperColoring(const Graph &conflict,
                      const std::vector<std::size_t> &colors);

/** Vertex order of decreasing degree (Welsh-Powell order). */
std::vector<std::size_t> degreeDescendingOrder(const Graph &g);

} // namespace youtiao

#endif // YOUTIAO_GRAPH_COLORING_HPP
