/**
 * @file
 * Shortest-path algorithms, including the multi-path metric YOUTIAO's
 * equivalent distance builds on.
 *
 * Section 4.1 of the paper defines the topological distance between two
 * qubits as d_top = n * l, where l is the unweighted shortest-path length
 * and n the number of distinct shortest paths ("multi-path metrics are more
 * robust, especially for chips arranged in a square topology").
 */

#ifndef YOUTIAO_GRAPH_SHORTEST_PATH_HPP
#define YOUTIAO_GRAPH_SHORTEST_PATH_HPP

#include <cstddef>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace youtiao {

/** Sentinel distance for unreachable vertex pairs. */
inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

/** Hop distance and shortest-path multiplicity from one source vertex. */
struct MultiPathResult
{
    /** Hop count per vertex (kUnreachable when disconnected). */
    std::vector<std::size_t> hops;
    /**
     * Number of distinct shortest paths per vertex, saturated at a large
     * cap to avoid overflow on highly regular lattices.
     */
    std::vector<std::size_t> pathCount;
};

/**
 * BFS from @p source computing hop distances and shortest-path counts for
 * every vertex.
 */
MultiPathResult multiPathBfs(const Graph &g, std::size_t source);

/** Unweighted hop distance between two vertices (kUnreachable if none). */
std::size_t hopDistance(const Graph &g, std::size_t from, std::size_t to);

/**
 * The paper's multi-path topological distance d_top = n * l between two
 * vertices: shortest-path length l times shortest-path multiplicity n.
 * Returns kUnreachable when no path exists and 0 for from == to.
 */
std::size_t multiPathDistance(const Graph &g, std::size_t from,
                              std::size_t to);

/** All-pairs multi-path distances as a dense table (row = source). */
std::vector<std::vector<std::size_t>> allPairsMultiPathDistance(
    const Graph &g);

/**
 * Dijkstra over non-negative edge weights from @p source; returns the
 * weighted distance per vertex (infinity when unreachable).
 */
std::vector<double> dijkstra(const Graph &g, std::size_t source);

} // namespace youtiao

#endif // YOUTIAO_GRAPH_SHORTEST_PATH_HPP
