#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/error.hpp"

namespace youtiao {

namespace {

constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);

std::vector<std::size_t>
resolveOrder(const Graph &g, const std::vector<std::size_t> &order)
{
    if (!order.empty()) {
        requireConfig(order.size() == g.vertexCount(),
                      "coloring order must cover every vertex exactly once");
        return order;
    }
    std::vector<std::size_t> seq(g.vertexCount());
    std::iota(seq.begin(), seq.end(), 0);
    return seq;
}

} // namespace

std::vector<std::size_t>
greedyColoring(const Graph &conflict, const std::vector<std::size_t> &order)
{
    const auto seq = resolveOrder(conflict, order);
    std::vector<std::size_t> colors(conflict.vertexCount(), kUncolored);
    std::vector<bool> used;
    for (std::size_t v : seq) {
        used.assign(conflict.vertexCount() + 1, false);
        for (const Incidence &inc : conflict.incidences(v)) {
            if (colors[inc.vertex] != kUncolored)
                used[colors[inc.vertex]] = true;
        }
        std::size_t c = 0;
        while (used[c])
            ++c;
        colors[v] = c;
    }
    return colors;
}

std::vector<std::size_t>
greedyColoringCapped(const Graph &conflict, std::size_t capacity,
                     const std::vector<std::size_t> &order)
{
    requireConfig(capacity > 0, "color capacity must be positive");
    const auto seq = resolveOrder(conflict, order);
    std::vector<std::size_t> colors(conflict.vertexCount(), kUncolored);
    std::vector<std::size_t> load;
    std::vector<bool> used;
    for (std::size_t v : seq) {
        used.assign(load.size() + 1, false);
        for (const Incidence &inc : conflict.incidences(v)) {
            if (colors[inc.vertex] != kUncolored)
                used[colors[inc.vertex]] = true;
        }
        std::size_t c = 0;
        while (c < load.size() && (used[c] || load[c] >= capacity))
            ++c;
        if (c == load.size())
            load.push_back(0);
        colors[v] = c;
        ++load[c];
    }
    return colors;
}

std::size_t
colorCount(const std::vector<std::size_t> &colors)
{
    std::size_t max_color = 0;
    bool any = false;
    for (std::size_t c : colors) {
        if (c == kUncolored)
            continue;
        any = true;
        max_color = std::max(max_color, c);
    }
    return any ? max_color + 1 : 0;
}

bool
isProperColoring(const Graph &conflict,
                 const std::vector<std::size_t> &colors)
{
    if (colors.size() != conflict.vertexCount())
        return false;
    for (const Edge &e : conflict.edges()) {
        if (colors[e.u] == colors[e.v])
            return false;
    }
    return true;
}

std::vector<std::size_t>
degreeDescendingOrder(const Graph &g)
{
    std::vector<std::size_t> order(g.vertexCount());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&g](std::size_t a, std::size_t b) {
                         return g.degree(a) > g.degree(b);
                     });
    return order;
}

} // namespace youtiao
