#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "common/error.hpp"

namespace youtiao {

Graph::Graph(std::size_t vertex_count)
    : adjacency_(vertex_count)
{}

std::size_t
Graph::addVertex()
{
    adjacency_.emplace_back();
    return adjacency_.size() - 1;
}

std::size_t
Graph::addEdge(std::size_t u, std::size_t v, double weight)
{
    checkVertex(u);
    checkVertex(v);
    requireConfig(u != v, "self-loops are not allowed");
    // Build the message only on failure: addEdge is on the chip- and
    // device-graph construction hot path, where an unconditional
    // to_string pair per edge dominated bulk loading.
    if (hasEdge(u, v))
        throw ConfigError("duplicate edge (" + std::to_string(u) +
                          ", " + std::to_string(v) + ")");
    const std::size_t index = edges_.size();
    adjacency_[u].push_back(Incidence{v, index});
    adjacency_[v].push_back(Incidence{u, index});
    edges_.push_back(Edge{u, v, weight});
    return index;
}

bool
Graph::hasEdge(std::size_t u, std::size_t v) const
{
    checkVertex(u);
    checkVertex(v);
    const bool u_smaller = adjacency_[u].size() <= adjacency_[v].size();
    const auto &list = u_smaller ? adjacency_[u] : adjacency_[v];
    const std::size_t target = u_smaller ? v : u;
    return std::any_of(list.begin(), list.end(),
                       [target](const Incidence &inc) {
                           return inc.vertex == target;
                       });
}

double
Graph::edgeWeight(std::size_t u, std::size_t v) const
{
    checkVertex(u);
    checkVertex(v);
    for (const Incidence &inc : adjacency_[u]) {
        if (inc.vertex == v)
            return edges_[inc.edge].weight;
    }
    throw ConfigError("edge (" + std::to_string(u) + ", " +
                      std::to_string(v) + ") not present");
}

const std::vector<Incidence> &
Graph::incidences(std::size_t v) const
{
    checkVertex(v);
    return adjacency_[v];
}

std::vector<std::size_t>
Graph::neighbors(std::size_t v) const
{
    checkVertex(v);
    std::vector<std::size_t> out;
    out.reserve(adjacency_[v].size());
    for (const Incidence &inc : adjacency_[v])
        out.push_back(inc.vertex);
    return out;
}

std::size_t
Graph::degree(std::size_t v) const
{
    checkVertex(v);
    return adjacency_[v].size();
}

const Edge &
Graph::edge(std::size_t index) const
{
    requireConfig(index < edges_.size(), "edge index out of range");
    return edges_[index];
}

bool
Graph::isConnected() const
{
    if (adjacency_.empty())
        return true;
    const auto labels = connectedComponents();
    return std::all_of(labels.begin(), labels.end(),
                       [](std::size_t l) { return l == 0; });
}

std::vector<std::size_t>
Graph::connectedComponents() const
{
    constexpr std::size_t unvisited = static_cast<std::size_t>(-1);
    std::vector<std::size_t> label(adjacency_.size(), unvisited);
    std::size_t next_label = 0;
    for (std::size_t start = 0; start < adjacency_.size(); ++start) {
        if (label[start] != unvisited)
            continue;
        std::queue<std::size_t> frontier;
        frontier.push(start);
        label[start] = next_label;
        while (!frontier.empty()) {
            const std::size_t v = frontier.front();
            frontier.pop();
            for (const Incidence &inc : adjacency_[v]) {
                if (label[inc.vertex] == unvisited) {
                    label[inc.vertex] = next_label;
                    frontier.push(inc.vertex);
                }
            }
        }
        ++next_label;
    }
    return label;
}

void
Graph::checkVertex(std::size_t v) const
{
    if (v >= adjacency_.size())
        throw ConfigError("vertex " + std::to_string(v) +
                          " out of range");
}

} // namespace youtiao
