/**
 * @file
 * Disjoint-set (union-find) with path compression and union by size.
 *
 * Used by the generative chip partition to merge and query routing regions
 * and by the router's connectivity checks.
 */

#ifndef YOUTIAO_GRAPH_UNION_FIND_HPP
#define YOUTIAO_GRAPH_UNION_FIND_HPP

#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace youtiao {

/** Disjoint-set forest over the elements [0, size). */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t size)
        : parent_(size), size_(size, 1)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    /** Representative of @p x's set (with path compression). */
    std::size_t
    find(std::size_t x)
    {
        requireConfig(x < parent_.size(), "union-find index out of range");
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** Merge the sets of @p a and @p b; returns false if already joined. */
    bool
    unite(std::size_t a, std::size_t b)
    {
        std::size_t ra = find(a);
        std::size_t rb = find(b);
        if (ra == rb)
            return false;
        if (size_[ra] < size_[rb])
            std::swap(ra, rb);
        parent_[rb] = ra;
        size_[ra] += size_[rb];
        return true;
    }

    /** True when @p a and @p b share a set. */
    bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

    /** Size of the set containing @p x. */
    std::size_t setSize(std::size_t x) { return size_[find(x)]; }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> size_;
};

} // namespace youtiao

#endif // YOUTIAO_GRAPH_UNION_FIND_HPP
