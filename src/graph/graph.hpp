/**
 * @file
 * Undirected graph with optional edge weights.
 *
 * The chip coupling map, the equivalent-distance graph used for FDM
 * grouping, and the conflict graphs used for TDM grouping are all instances
 * of this structure.
 */

#ifndef YOUTIAO_GRAPH_GRAPH_HPP
#define YOUTIAO_GRAPH_GRAPH_HPP

#include <cstddef>
#include <vector>

namespace youtiao {

/** A weighted undirected edge between vertices u and v. */
struct Edge
{
    std::size_t u = 0;
    std::size_t v = 0;
    double weight = 1.0;
};

/** Adjacency entry: the neighbour vertex and the connecting edge index. */
struct Incidence
{
    std::size_t vertex = 0;
    std::size_t edge = 0;
};

/**
 * Undirected graph over vertices [0, vertexCount).
 *
 * Parallel edges and self-loops are rejected. Adjacency is kept as
 * per-vertex incidence lists for O(degree) iteration with direct access to
 * edge weights.
 */
class Graph
{
  public:
    Graph() = default;

    /** Construct with @p vertex_count isolated vertices. */
    explicit Graph(std::size_t vertex_count);

    std::size_t vertexCount() const { return adjacency_.size(); }
    std::size_t edgeCount() const { return edges_.size(); }

    /** Append a new isolated vertex; returns its index. */
    std::size_t addVertex();

    /**
     * Add the undirected edge (u, v); returns its edge index.
     * Throws ConfigError on self-loops, duplicate edges, or bad vertices.
     */
    std::size_t addEdge(std::size_t u, std::size_t v, double weight = 1.0);

    /** True when (u, v) is an edge. */
    bool hasEdge(std::size_t u, std::size_t v) const;

    /** Weight of edge (u, v); throws ConfigError when absent. */
    double edgeWeight(std::size_t u, std::size_t v) const;

    /** Incidence list (neighbour + edge index) of @p v. */
    const std::vector<Incidence> &incidences(std::size_t v) const;

    /** Neighbour vertex indices of @p v (copies out of the incidences). */
    std::vector<std::size_t> neighbors(std::size_t v) const;

    /** Degree of @p v. */
    std::size_t degree(std::size_t v) const;

    /** All edges, in insertion order. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Edge by index. */
    const Edge &edge(std::size_t index) const;

    /** True when every vertex is reachable from vertex 0 (or empty). */
    bool isConnected() const;

    /** Connected-component label per vertex (labels are 0-based). */
    std::vector<std::size_t> connectedComponents() const;

  private:
    void checkVertex(std::size_t v) const;

    std::vector<std::vector<Incidence>> adjacency_;
    std::vector<Edge> edges_;
};

} // namespace youtiao

#endif // YOUTIAO_GRAPH_GRAPH_HPP
