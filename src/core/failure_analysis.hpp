/**
 * @file
 * Wiring failure analysis: the blast radius of a broken line.
 *
 * Multiplexing's dark side: a failed coax or DEMUX now takes several
 * devices down with it. These helpers quantify that trade-off so a
 * designer can weigh cable savings against serviceability -- an analysis
 * the paper leaves implicit.
 */

#ifndef YOUTIAO_CORE_FAILURE_ANALYSIS_HPP
#define YOUTIAO_CORE_FAILURE_ANALYSIS_HPP

#include <vector>

#include "chip/topology.hpp"
#include "core/youtiao.hpp"

namespace youtiao {

/** Which control plane a failing line belongs to. */
enum class WiringPlane { Xy, Z, Readout };

/**
 * Qubits that lose a control capability when line @p line_id of
 * @p plane fails. XY: the line's group. Z: qubits in the group plus both
 * endpoints of every grouped coupler (their two-qubit gates die).
 * Readout: the feedline's group.
 */
std::vector<std::size_t> qubitsLostIfLineFails(const ChipTopology &chip,
                                               const YoutiaoDesign &design,
                                               WiringPlane plane,
                                               std::size_t line_id);

/** Aggregate serviceability metrics of a design. */
struct FailureImpact
{
    /** Lines across all three planes. */
    std::size_t totalLines = 0;
    /** Mean qubits affected per single-line failure. */
    double meanQubitsLost = 0.0;
    /** Worst single-line failure. */
    std::size_t worstQubitsLost = 0;
};

/** Sweep every line of every plane. */
FailureImpact analyzeFailureImpact(const ChipTopology &chip,
                                   const YoutiaoDesign &design);

} // namespace youtiao

#endif // YOUTIAO_CORE_FAILURE_ANALYSIS_HPP
