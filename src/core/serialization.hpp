/**
 * @file
 * Plain-text serialization of wiring designs.
 *
 * A finished design is a fabrication artefact: it must survive the
 * session that computed it. The format is a line-oriented key/value
 * listing (versioned, self-describing, diff-friendly) covering the FDM
 * plan, frequency allocation, TDM plan, readout plan and the resource
 * tally. Loading reconstructs a YoutiaoDesign sufficient for scheduling,
 * fidelity estimation and routing (the fitted models themselves are not
 * persisted; predictions are).
 */

#ifndef YOUTIAO_CORE_SERIALIZATION_HPP
#define YOUTIAO_CORE_SERIALIZATION_HPP

#include <iosfwd>
#include <string>

#include "core/hierarchical.hpp"
#include "core/youtiao.hpp"

namespace youtiao {

/** Current format version. */
inline constexpr int kDesignFormatVersion = 1;

/** Current tile-map format version. */
inline constexpr int kTileMapFormatVersion = 1;

/** Write @p design to @p out. */
void saveDesign(std::ostream &out, const YoutiaoDesign &design);

/** Render to a string (convenience for tests and tools). */
std::string designToString(const YoutiaoDesign &design);

/**
 * Parse a design previously written by saveDesign. Throws ConfigError on
 * malformed input, version mismatch, or internally inconsistent plans.
 * The crosstalk-model objects are left untrained; the predicted matrices
 * are restored.
 */
YoutiaoDesign loadDesign(std::istream &in);

/** Parse from a string. */
YoutiaoDesign designFromString(const std::string &text);

/**
 * Structural consistency checks every loader runs before handing a
 * design to callers: per-qubit sections must agree on the qubit count
 * and every per-qubit/per-device map must match its group list, so a
 * corrupt file (text or binary) cannot load "successfully". Throws
 * ConfigError on the first violation.
 */
void validateDesign(const YoutiaoDesign &design);

/**
 * Write @p map (a hierarchical tile assignment, see hierarchical.hpp) in
 * the same line-oriented key/value format as designs: lattice shape, cut
 * coordinates, then the per-qubit tile assignment.
 */
void saveTileMap(std::ostream &out, const TileMap &map);

/** Render to a string (convenience for tests and tools). */
std::string tileMapToString(const TileMap &map);

/**
 * Parse a tile map previously written by saveTileMap. Throws ConfigError
 * on malformed input -- truncated or garbled files fail the same token
 * budgets as designs and never turn a corrupt count into a huge
 * allocation. The result satisfies validateTileMap.
 */
TileMap loadTileMap(std::istream &in);

/** Parse from a string. */
TileMap tileMapFromString(const std::string &text);

} // namespace youtiao

#endif // YOUTIAO_CORE_SERIALIZATION_HPP
