#include "core/fault_campaign.hpp"

#include <exception>
#include <map>
#include <sstream>
#include <utility>

#include "chip/defects.hpp"
#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/prng.hpp"
#include "common/trace.hpp"
#include "core/checkpoint_codec.hpp"
#include "noise/crosstalk_data.hpp"
#include "routing/chip_router.hpp"
#include "routing/drc.hpp"

namespace youtiao {

namespace {

FaultCampaignRun
runOne(const ChipTopology &chip, const FaultCampaignConfig &config,
       double rate, std::uint64_t run_seed)
{
    FaultCampaignRun run;
    run.defectRate = rate;
    run.seed = run_seed;
    const trace::TraceSpan span("campaign.run", "campaign");
    const metrics::ScopedTimer timer("campaign.run");
    metrics::count("campaign.runs");
    try {
        const ChipDefects defects = [&] {
            const trace::TraceSpan defects_span("campaign.defects",
                                                "campaign");
            const metrics::ScopedTimer defects_timer("campaign.defects");
            return randomDefects(chip, uniformDefectRates(rate),
                                 run_seed);
        }();
        run.deadQubits = defects.deadQubits.size();
        run.brokenCouplers = defects.brokenCouplers.size();
        run.maskedBands = defects.maskedBandsGHz.size();
        const DegradedChip degraded = applyDefects(chip, defects);

        YoutiaoConfig designer_cfg = config.designer;
        for (const FrequencyMask &m : defects.maskedBandsGHz)
            designer_cfg.frequency.maskedBandsGHz.emplace_back(m.loGHz,
                                                               m.hiGHz);
        const YoutiaoDesigner designer(designer_cfg);
        Prng prng(taskSeed(run_seed, 0xC4A21Aull));
        const ChipCharacterization data =
            characterizeChip(degraded.chip, prng);

        Expected<YoutiaoDesign, DesignError> result = [&] {
            const trace::TraceSpan design_span("campaign.design",
                                               "campaign");
            const metrics::ScopedTimer design_timer("campaign.design");
            return designer.designFromMeasurementsRobust(degraded.chip,
                                                         data);
        }();
        if (!result.hasValue()) {
            metrics::count("campaign.design_failures");
            run.error = result.error().toString();
            return run;
        }
        YoutiaoDesign design = std::move(result.value());
        design.degradation.excludedQubits = defects.deadQubits;
        design.degradation.excludedCouplers = degraded.removedCouplers;

        if (config.route) {
            const trace::TraceSpan route_span("campaign.route",
                                              "campaign");
            const metrics::ScopedTimer route_timer("campaign.route");
            ChipRoutingConfig routing_cfg;
            routing_cfg.blockedCells = defects.blockedRoutingCells;
            routing_cfg.blockedHalfWidthMm = defects.blockedHalfWidthMm;
            const std::vector<NetSpec> nets =
                buildWiringNets(degraded.chip, design.xyPlan,
                                design.zPlan, design.readoutPlan,
                                routing_cfg);
            const RoutedWiring routed =
                routeChipWithFallback(degraded.chip, nets, routing_cfg);
            run.routed = true;
            run.failedConnections = routed.result.failedConnections;
            design.degradation.dedicatedNetFallbacks =
                routed.dedicatedNetFallbacks;
            if (routed.dedicatedNetFallbacks > 0)
                design.degradation.notes.push_back(
                    std::to_string(routed.fallbackNets.size()) +
                    " net(s) fell back to " +
                    std::to_string(routed.dedicatedNetFallbacks) +
                    " dedicated line(s)");
            if (routed.result.failedConnections > 0) {
                run.degradation = design.degradation;
                run.error =
                    DesignError(DesignStage::Routing,
                                "routing incomplete even after dedicated-"
                                "line fallback")
                        .with("failed_connections",
                              routed.result.failedConnections)
                        .with("nets", routed.result.netCount)
                        .toString();
                return run;
            }
            if (routed.result.grid.has_value()) {
                const DrcReport drc = checkRoutingDrc(
                    *routed.result.grid, routed.result.netCount,
                    routed.result.crossovers);
                run.drcClean = drc.clean;
                run.drcViolations = drc.violations.size();
            }
        }

        run.ok = true;
        run.degradation = std::move(design.degradation);
        run.degraded = !run.degradation.empty();
        run.costUsd = design.costUsd;
    } catch (const std::exception &e) {
        // The robust pipeline is not supposed to throw; anything caught
        // here is still reported structurally rather than crashing the
        // campaign.
        run.ok = false;
        run.error = std::string("unexpected exception: ") + e.what();
    }
    return run;
}

/**
 * Per-cell checkpoint payload: the finished run plus a snapshot of the
 * fault-site counters taken right after it. A site's firing sequence is
 * a pure function of (site, rate, seed, hit index), so fast-forwarding
 * the counters (fault::restoreCounters) before the first live cell
 * makes the resumed tail fire exactly as the uninterrupted run would.
 */
std::vector<std::uint8_t>
packCell(const FaultCampaignRun &run,
         const std::map<std::string, fault::SiteStats> &counters)
{
    checkpoint::ByteWriter w;
    w.f64(run.defectRate);
    w.u64(run.seed);
    w.u64(run.deadQubits);
    w.u64(run.brokenCouplers);
    w.u64(run.maskedBands);
    w.boolean(run.ok);
    w.boolean(run.degraded);
    w.boolean(run.routed);
    w.boolean(run.drcClean);
    w.u64(run.drcViolations);
    w.u64(run.failedConnections);
    ckptcodec::putDegradation(w, run.degradation);
    w.f64(run.costUsd);
    w.str(run.error);
    w.u64(counters.size());
    for (const auto &[site, s] : counters) {
        w.str(site);
        w.f64(s.rate);
        w.u64(s.seed);
        w.u64(s.hits);
        w.u64(s.fires);
    }
    return w.bytes();
}

void
unpackCell(const std::vector<std::uint8_t> &bytes, FaultCampaignRun &run,
           std::map<std::string, fault::SiteStats> &counters)
{
    checkpoint::ByteReader r(bytes);
    run.defectRate = r.f64();
    run.seed = r.u64();
    run.deadQubits = r.u64();
    run.brokenCouplers = r.u64();
    run.maskedBands = r.u64();
    run.ok = r.boolean();
    run.degraded = r.boolean();
    run.routed = r.boolean();
    run.drcClean = r.boolean();
    run.drcViolations = r.u64();
    run.failedConnections = r.u64();
    run.degradation = ckptcodec::getDegradation(r);
    run.costUsd = r.f64();
    run.error = r.str();
    counters.clear();
    const std::size_t sites = r.u64();
    for (std::size_t i = 0; i < sites; ++i) {
        const std::string site = r.str();
        fault::SiteStats s;
        s.rate = r.f64();
        s.seed = r.u64();
        s.hits = r.u64();
        s.fires = r.u64();
        counters.emplace(site, s);
    }
    requireConfig(r.exhausted(),
                  "campaign cell snapshot has trailing bytes");
}

void
appendJsonDouble(std::ostringstream &out, double v)
{
    // json::parse has no lexer for inf/nan; clamp to null.
    if (v != v || v > 1e308 || v < -1e308) {
        out << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    out << tmp.str();
}

} // namespace

bool
FaultCampaignSummary::allRunsAccounted() const
{
    for (const FaultCampaignRun &run : runs) {
        if (run.ok) {
            if (run.routed && !run.drcClean)
                return false;
        } else if (run.error.empty()) {
            return false;
        }
    }
    return true;
}

std::string
FaultCampaignSummary::toJson() const
{
    std::ostringstream out;
    out << "{\n"
        << "  \"schema\": \"youtiao-fault-campaign-1\",\n"
        << "  \"chip\": \"" << json::escape(chipName) << "\",\n"
        << "  \"qubits\": " << chipQubits << ",\n"
        << "  \"base_seed\": " << config.baseSeed << ",\n"
        << "  \"seeds_per_rate\": " << config.seedsPerRate << ",\n"
        << "  \"fault_spec\": \"" << json::escape(config.faultSpec)
        << "\",\n"
        << "  \"route\": " << (config.route ? "true" : "false") << ",\n";
    out << "  \"rates\": [";
    for (std::size_t i = 0; i < config.defectRates.size(); ++i) {
        if (i > 0)
            out << ", ";
        appendJsonDouble(out, config.defectRates[i]);
    }
    out << "],\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const FaultCampaignRun &run = runs[i];
        out << "    {\"rate\": ";
        appendJsonDouble(out, run.defectRate);
        out << ", \"seed\": " << run.seed
            << ", \"dead_qubits\": " << run.deadQubits
            << ", \"broken_couplers\": " << run.brokenCouplers
            << ", \"masked_bands\": " << run.maskedBands
            << ", \"ok\": " << (run.ok ? "true" : "false")
            << ", \"degraded\": " << (run.degraded ? "true" : "false")
            << ", \"routed\": " << (run.routed ? "true" : "false")
            << ", \"drc_clean\": " << (run.drcClean ? "true" : "false")
            << ", \"drc_violations\": " << run.drcViolations
            << ", \"failed_connections\": " << run.failedConnections
            << ", \"allocation_attempts\": "
            << run.degradation.allocationAttempts
            << ", \"fdm_capacity_used\": "
            << run.degradation.fdmCapacityUsed
            << ", \"demux_fallback_devices\": "
            << run.degradation.demuxFallbackDevices
            << ", \"dedicated_net_fallbacks\": "
            << run.degradation.dedicatedNetFallbacks
            << ", \"cost_usd\": ";
        appendJsonDouble(out, run.costUsd);
        out << ", \"cost_delta_usd\": ";
        appendJsonDouble(out, run.degradation.costDeltaUsd);
        out << ", \"error\": \"" << json::escape(run.error) << "\"}";
        out << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    out << "  ],\n"
        << "  \"summary\": {\"runs\": " << runs.size()
        << ", \"ok\": " << okCount << ", \"failed\": " << failedCount
        << ", \"degraded\": " << degradedCount
        << ", \"drc_violations\": " << drcViolationCount
        << ", \"all_accounted\": "
        << (allRunsAccounted() ? "true" : "false") << "}\n"
        << "}\n";
    return out.str();
}

FaultCampaignSummary
runFaultCampaign(const ChipTopology &chip,
                 const FaultCampaignConfig &config)
{
    requireConfig(!config.defectRates.empty(),
                  "fault campaign needs at least one defect rate");
    for (double rate : config.defectRates)
        requireConfig(rate >= 0.0 && rate <= 1.0,
                      "defect rates must lie in [0, 1]");
    requireConfig(config.seedsPerRate >= 1,
                  "fault campaign needs at least one seed per rate");

    FaultCampaignSummary summary;
    summary.chipName = chip.name();
    summary.chipQubits = chip.qubitCount();
    summary.config = config;

    const bool inject = !config.faultSpec.empty();
    if (inject) {
        fault::reset();
        fault::configure(config.faultSpec); // throws on bad grammar
        fault::enable();
    }
    log::info("fault campaign started",
              {{"rates", config.defectRates.size()},
               {"seeds_per_rate", config.seedsPerRate},
               {"inject", inject}});

    // Cells run in deterministic (rate, seed) order; each finished cell
    // is a checkpoint barrier. On resume, cached cells replay from the
    // journal and the first live cell fast-forwards the fault-site
    // counters to where the cached stream left them.
    std::map<std::string, fault::SiteStats> cached_counters;
    bool counters_stale = false;
    try {
        std::size_t index = 0;
        for (double rate : config.defectRates) {
            for (std::size_t s = 0; s < config.seedsPerRate; ++s) {
                const std::uint64_t run_seed =
                    taskSeed(config.baseSeed, index);
                const std::string ckpt_key =
                    "cell-" + std::to_string(index);
                ++index;
                if (checkpoint::active()) {
                    std::vector<std::uint8_t> blob;
                    if (checkpoint::fetch(ckpt_key, blob)) {
                        FaultCampaignRun run;
                        unpackCell(blob, run, cached_counters);
                        summary.runs.push_back(std::move(run));
                        counters_stale = true;
                        continue;
                    }
                }
                cancel::poll("campaign.cell");
                if (counters_stale) {
                    if (inject)
                        fault::restoreCounters(cached_counters);
                    counters_stale = false;
                }
                summary.runs.push_back(
                    runOne(chip, config, rate, run_seed));
                if (checkpoint::active())
                    checkpoint::store(
                        ckpt_key,
                        packCell(summary.runs.back(),
                                 inject ? fault::stats()
                                        : std::map<std::string,
                                                   fault::SiteStats>{}));
            }
        }
    } catch (...) {
        if (inject) {
            fault::disable();
            fault::reset();
        }
        throw;
    }
    if (inject) {
        fault::disable();
        fault::reset();
    }

    for (const FaultCampaignRun &run : summary.runs) {
        if (run.ok)
            ++summary.okCount;
        else
            ++summary.failedCount;
        if (run.degraded)
            ++summary.degradedCount;
        summary.drcViolationCount += run.drcViolations;
    }
    if (summary.failedCount > 0)
        metrics::count("campaign.failed_runs", summary.failedCount);
    if (summary.degradedCount > 0)
        metrics::count("campaign.degraded_runs", summary.degradedCount);
    log::info("fault campaign done",
              {{"runs", summary.runs.size()},
               {"ok", summary.okCount},
               {"failed", summary.failedCount},
               {"degraded", summary.degradedCount}});
    return summary;
}

} // namespace youtiao
