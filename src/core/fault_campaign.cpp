#include "core/fault_campaign.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "chip/defects.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/prng.hpp"
#include "common/trace.hpp"
#include "noise/crosstalk_data.hpp"
#include "routing/chip_router.hpp"
#include "routing/drc.hpp"

namespace youtiao {

namespace {

FaultCampaignRun
runOne(const ChipTopology &chip, const FaultCampaignConfig &config,
       double rate, std::uint64_t run_seed)
{
    FaultCampaignRun run;
    run.defectRate = rate;
    run.seed = run_seed;
    const trace::TraceSpan span("campaign.run", "campaign");
    const metrics::ScopedTimer timer("campaign.run");
    metrics::count("campaign.runs");
    try {
        const ChipDefects defects = [&] {
            const trace::TraceSpan defects_span("campaign.defects",
                                                "campaign");
            const metrics::ScopedTimer defects_timer("campaign.defects");
            return randomDefects(chip, uniformDefectRates(rate),
                                 run_seed);
        }();
        run.deadQubits = defects.deadQubits.size();
        run.brokenCouplers = defects.brokenCouplers.size();
        run.maskedBands = defects.maskedBandsGHz.size();
        const DegradedChip degraded = applyDefects(chip, defects);

        YoutiaoConfig designer_cfg = config.designer;
        for (const FrequencyMask &m : defects.maskedBandsGHz)
            designer_cfg.frequency.maskedBandsGHz.emplace_back(m.loGHz,
                                                               m.hiGHz);
        const YoutiaoDesigner designer(designer_cfg);
        Prng prng(taskSeed(run_seed, 0xC4A21Aull));
        const ChipCharacterization data =
            characterizeChip(degraded.chip, prng);

        Expected<YoutiaoDesign, DesignError> result = [&] {
            const trace::TraceSpan design_span("campaign.design",
                                               "campaign");
            const metrics::ScopedTimer design_timer("campaign.design");
            return designer.designFromMeasurementsRobust(degraded.chip,
                                                         data);
        }();
        if (!result.hasValue()) {
            metrics::count("campaign.design_failures");
            run.error = result.error().toString();
            return run;
        }
        YoutiaoDesign design = std::move(result.value());
        design.degradation.excludedQubits = defects.deadQubits;
        design.degradation.excludedCouplers = degraded.removedCouplers;

        if (config.route) {
            const trace::TraceSpan route_span("campaign.route",
                                              "campaign");
            const metrics::ScopedTimer route_timer("campaign.route");
            ChipRoutingConfig routing_cfg;
            routing_cfg.blockedCells = defects.blockedRoutingCells;
            routing_cfg.blockedHalfWidthMm = defects.blockedHalfWidthMm;
            const std::vector<NetSpec> nets =
                buildWiringNets(degraded.chip, design.xyPlan,
                                design.zPlan, design.readoutPlan,
                                routing_cfg);
            const RoutedWiring routed =
                routeChipWithFallback(degraded.chip, nets, routing_cfg);
            run.routed = true;
            run.failedConnections = routed.result.failedConnections;
            design.degradation.dedicatedNetFallbacks =
                routed.dedicatedNetFallbacks;
            if (routed.dedicatedNetFallbacks > 0)
                design.degradation.notes.push_back(
                    std::to_string(routed.fallbackNets.size()) +
                    " net(s) fell back to " +
                    std::to_string(routed.dedicatedNetFallbacks) +
                    " dedicated line(s)");
            if (routed.result.failedConnections > 0) {
                run.degradation = design.degradation;
                run.error =
                    DesignError(DesignStage::Routing,
                                "routing incomplete even after dedicated-"
                                "line fallback")
                        .with("failed_connections",
                              routed.result.failedConnections)
                        .with("nets", routed.result.netCount)
                        .toString();
                return run;
            }
            if (routed.result.grid.has_value()) {
                const DrcReport drc = checkRoutingDrc(
                    *routed.result.grid, routed.result.netCount,
                    routed.result.crossovers);
                run.drcClean = drc.clean;
                run.drcViolations = drc.violations.size();
            }
        }

        run.ok = true;
        run.degradation = std::move(design.degradation);
        run.degraded = !run.degradation.empty();
        run.costUsd = design.costUsd;
    } catch (const std::exception &e) {
        // The robust pipeline is not supposed to throw; anything caught
        // here is still reported structurally rather than crashing the
        // campaign.
        run.ok = false;
        run.error = std::string("unexpected exception: ") + e.what();
    }
    return run;
}

void
appendJsonDouble(std::ostringstream &out, double v)
{
    // json::parse has no lexer for inf/nan; clamp to null.
    if (v != v || v > 1e308 || v < -1e308) {
        out << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    out << tmp.str();
}

} // namespace

bool
FaultCampaignSummary::allRunsAccounted() const
{
    for (const FaultCampaignRun &run : runs) {
        if (run.ok) {
            if (run.routed && !run.drcClean)
                return false;
        } else if (run.error.empty()) {
            return false;
        }
    }
    return true;
}

std::string
FaultCampaignSummary::toJson() const
{
    std::ostringstream out;
    out << "{\n"
        << "  \"schema\": \"youtiao-fault-campaign-1\",\n"
        << "  \"chip\": \"" << json::escape(chipName) << "\",\n"
        << "  \"qubits\": " << chipQubits << ",\n"
        << "  \"base_seed\": " << config.baseSeed << ",\n"
        << "  \"seeds_per_rate\": " << config.seedsPerRate << ",\n"
        << "  \"fault_spec\": \"" << json::escape(config.faultSpec)
        << "\",\n"
        << "  \"route\": " << (config.route ? "true" : "false") << ",\n";
    out << "  \"rates\": [";
    for (std::size_t i = 0; i < config.defectRates.size(); ++i) {
        if (i > 0)
            out << ", ";
        appendJsonDouble(out, config.defectRates[i]);
    }
    out << "],\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const FaultCampaignRun &run = runs[i];
        out << "    {\"rate\": ";
        appendJsonDouble(out, run.defectRate);
        out << ", \"seed\": " << run.seed
            << ", \"dead_qubits\": " << run.deadQubits
            << ", \"broken_couplers\": " << run.brokenCouplers
            << ", \"masked_bands\": " << run.maskedBands
            << ", \"ok\": " << (run.ok ? "true" : "false")
            << ", \"degraded\": " << (run.degraded ? "true" : "false")
            << ", \"routed\": " << (run.routed ? "true" : "false")
            << ", \"drc_clean\": " << (run.drcClean ? "true" : "false")
            << ", \"drc_violations\": " << run.drcViolations
            << ", \"failed_connections\": " << run.failedConnections
            << ", \"allocation_attempts\": "
            << run.degradation.allocationAttempts
            << ", \"fdm_capacity_used\": "
            << run.degradation.fdmCapacityUsed
            << ", \"demux_fallback_devices\": "
            << run.degradation.demuxFallbackDevices
            << ", \"dedicated_net_fallbacks\": "
            << run.degradation.dedicatedNetFallbacks
            << ", \"cost_usd\": ";
        appendJsonDouble(out, run.costUsd);
        out << ", \"cost_delta_usd\": ";
        appendJsonDouble(out, run.degradation.costDeltaUsd);
        out << ", \"error\": \"" << json::escape(run.error) << "\"}";
        out << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    out << "  ],\n"
        << "  \"summary\": {\"runs\": " << runs.size()
        << ", \"ok\": " << okCount << ", \"failed\": " << failedCount
        << ", \"degraded\": " << degradedCount
        << ", \"drc_violations\": " << drcViolationCount
        << ", \"all_accounted\": "
        << (allRunsAccounted() ? "true" : "false") << "}\n"
        << "}\n";
    return out.str();
}

FaultCampaignSummary
runFaultCampaign(const ChipTopology &chip,
                 const FaultCampaignConfig &config)
{
    requireConfig(!config.defectRates.empty(),
                  "fault campaign needs at least one defect rate");
    for (double rate : config.defectRates)
        requireConfig(rate >= 0.0 && rate <= 1.0,
                      "defect rates must lie in [0, 1]");
    requireConfig(config.seedsPerRate >= 1,
                  "fault campaign needs at least one seed per rate");

    FaultCampaignSummary summary;
    summary.chipName = chip.name();
    summary.chipQubits = chip.qubitCount();
    summary.config = config;

    const bool inject = !config.faultSpec.empty();
    if (inject) {
        fault::reset();
        fault::configure(config.faultSpec); // throws on bad grammar
        fault::enable();
    }
    log::info("fault campaign started",
              {{"rates", config.defectRates.size()},
               {"seeds_per_rate", config.seedsPerRate},
               {"inject", inject}});

    std::size_t index = 0;
    for (double rate : config.defectRates) {
        for (std::size_t s = 0; s < config.seedsPerRate; ++s) {
            summary.runs.push_back(runOne(
                chip, config, rate, taskSeed(config.baseSeed, index)));
            ++index;
        }
    }
    if (inject) {
        fault::disable();
        fault::reset();
    }

    for (const FaultCampaignRun &run : summary.runs) {
        if (run.ok)
            ++summary.okCount;
        else
            ++summary.failedCount;
        if (run.degraded)
            ++summary.degradedCount;
        summary.drcViolationCount += run.drcViolations;
    }
    if (summary.failedCount > 0)
        metrics::count("campaign.failed_runs", summary.failedCount);
    if (summary.degradedCount > 0)
        metrics::count("campaign.degraded_runs", summary.degradedCount);
    log::info("fault campaign done",
              {{"runs", summary.runs.size()},
               {"ok", summary.okCount},
               {"failed", summary.failedCount},
               {"degraded", summary.degradedCount}});
    return summary;
}

} // namespace youtiao
