#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace youtiao {

std::string
chipMap(const ChipTopology &chip, const std::vector<std::size_t> &assignment)
{
    requireConfig(assignment.size() == chip.qubitCount(),
                  "assignment must cover every qubit");
    if (chip.qubitCount() == 0)
        return "";

    // Coarsen positions onto a character grid, two columns per site so
    // letters do not touch.
    double min_x = chip.qubit(0).position.x, max_x = min_x;
    double min_y = chip.qubit(0).position.y, max_y = min_y;
    for (const QubitInfo &q : chip.qubits()) {
        min_x = std::min(min_x, q.position.x);
        max_x = std::max(max_x, q.position.x);
        min_y = std::min(min_y, q.position.y);
        max_y = std::max(max_y, q.position.y);
    }
    // Site pitch estimate: smallest non-zero coordinate gap.
    double pitch = std::max(max_x - min_x, max_y - min_y);
    for (std::size_t a = 0; a < chip.qubitCount(); ++a) {
        for (std::size_t b = a + 1; b < chip.qubitCount(); ++b) {
            const double d = chip.physicalDistance(a, b);
            if (d > 1e-9)
                pitch = std::min(pitch, d);
        }
    }
    if (pitch <= 0.0)
        pitch = 1.0;
    const auto cols = static_cast<std::size_t>(
                          std::lround((max_x - min_x) / pitch)) + 1;
    const auto rows = static_cast<std::size_t>(
                          std::lround((max_y - min_y) / pitch)) + 1;
    std::vector<std::string> canvas(rows, std::string(2 * cols, '.'));
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        const auto cx = static_cast<std::size_t>(
            std::lround((chip.qubit(q).position.x - min_x) / pitch));
        const auto cy = static_cast<std::size_t>(
            std::lround((chip.qubit(q).position.y - min_y) / pitch));
        if (cy < rows && 2 * cx < canvas[cy].size())
            canvas[cy][2 * cx] = static_cast<char>(
                'A' + static_cast<char>(assignment[q] % 26));
    }
    std::ostringstream out;
    for (auto it = canvas.rbegin(); it != canvas.rend(); ++it)
        out << *it << '\n';
    return out.str();
}

std::string
wiringReport(const ChipTopology &chip, const YoutiaoDesign &design,
             const YoutiaoConfig &config)
{
    std::ostringstream out;
    char line[160];

    out << "== YOUTIAO wiring report: " << chip.name() << " ==\n";
    std::snprintf(line, sizeof line,
                  "%zu qubits, %zu couplers; crosstalk model w_phy=%.1f "
                  "w_top=%.1f\n\n",
                  chip.qubitCount(), chip.couplerCount(),
                  design.xyModel.wPhy(), design.xyModel.wTop());
    out << line;

    out << "-- XY plane (FDM, capacity " << config.fdm.lineCapacity
        << ") --\n";
    for (std::size_t l = 0; l < design.xyPlan.lines.size(); ++l) {
        out << "line " << l << ":";
        for (std::size_t q : design.xyPlan.lines[l]) {
            std::snprintf(line, sizeof line, " q%zu@%.2fGHz", q,
                          design.frequencyPlan.frequencyGHz[q]);
            out << line;
        }
        out << '\n';
    }
    out << "\nchip map by FDM line:\n"
        << chipMap(chip, design.xyPlan.lineOfQubit);

    out << "\n-- Z plane (TDM) --\n";
    std::snprintf(line, sizeof line,
                  "%zu lines: %zu x 1:4, %zu x 1:2, %zu dedicated; "
                  "%zu twisted-pair select lines\n",
                  design.zPlan.lineCount(),
                  design.zPlan.groupCountWithFanout(4),
                  design.zPlan.groupCountWithFanout(2),
                  design.zPlan.groupCountWithFanout(1),
                  design.zPlan.selectLineCount());
    out << line;

    out << "\n-- cryostat bill --\n";
    std::snprintf(line, sizeof line,
                  "coax %zu | RF DACs %zu | interfaces %zu | cost "
                  "$%.0fK\n",
                  design.counts.coax(), design.counts.rfDacs(),
                  design.counts.interfaces(), design.costUsd / 1e3);
    out << line;
    // Only robust-path designs that actually gave something up carry a
    // degradation block; clean reports stay byte-identical.
    if (!design.degradation.empty())
        out << '\n' << design.degradation.summary();
    return out.str();
}

std::string
costComparison(const YoutiaoDesign &ours, const BaselineDesign &baseline,
               const std::string &baseline_name)
{
    char line[160];
    std::snprintf(line, sizeof line,
                  "%s: %zu coax / $%.0fK  ->  YOUTIAO: %zu coax / $%.0fK "
                  "(%.1fx cheaper)",
                  baseline_name.c_str(), baseline.counts.coax(),
                  baseline.costUsd / 1e3, ours.counts.coax(),
                  ours.costUsd / 1e3, baseline.costUsd / ours.costUsd);
    return line;
}

std::string
hierarchicalReport(const ChipTopology &chip,
                   const HierarchicalDesign &design,
                   const YoutiaoConfig &config)
{
    std::ostringstream out;
    char line[200];

    out << "== YOUTIAO hierarchical design: " << chip.name() << " ==\n";
    std::snprintf(line, sizeof line,
                  "%zu qubits, %zu couplers; %zux%zu tile lattice, "
                  "%zu non-empty tiles, %zu seam couplers\n\n",
                  chip.qubitCount(), chip.couplerCount(),
                  design.map.tilesX, design.map.tilesY,
                  design.tiles.size(), design.seamCouplers.size());
    out << line;

    out << "-- tiles (FDM capacity " << config.fdm.lineCapacity
        << ") --\n";
    for (const HierarchicalTile &tile : design.tiles) {
        std::snprintf(line, sizeof line,
                      "tile (%zu,%zu): %zu qubits, %zu couplers, "
                      "%zu XY lines, %zu Z lines, cost $%.0fK%s\n",
                      tile.ix, tile.iy, tile.qubits.size(),
                      tile.couplers.size(),
                      tile.design.xyPlan.lines.size(),
                      tile.design.zPlan.lineCount(),
                      tile.design.costUsd / 1e3,
                      tile.design.degradation.empty() ? ""
                                                      : " [degraded]");
        out << line;
    }

    out << "\n-- seam stitch --\n";
    std::snprintf(line, sizeof line,
                  "radius %.2f mm; %zu cross-seam pairs checked, "
                  "%zu retunes, %zu above epsilon (worst %.3g)\n",
                  design.seamRadiusMmUsed, design.seamPairsChecked,
                  design.seamRetunes, design.seamViolationsUnresolved,
                  design.maxSeamCrosstalk);
    out << line;

    out << "\n-- merged cryostat bill --\n";
    std::snprintf(line, sizeof line,
                  "XY %zu | Z %zu | readout feeds %zu | coax %zu | "
                  "RF DACs %zu | cost $%.0fK\n",
                  design.merged.counts.xyLines,
                  design.merged.counts.zLines,
                  design.merged.counts.readoutFeeds,
                  design.merged.counts.coax(),
                  design.merged.counts.rfDacs(),
                  design.merged.costUsd / 1e3);
    out << line;
    if (!design.merged.degradation.empty())
        out << '\n' << design.merged.degradation.summary();
    return out.str();
}

} // namespace youtiao

namespace youtiao {

std::string
renderSchedule(const QuantumCircuit &qc, const Schedule &schedule,
               std::size_t max_layers)
{
    std::ostringstream out;
    const std::size_t layers =
        std::min(max_layers, schedule.layers.size());
    // One row per qubit, one column per layer: '.' idle, '1' one-qubit
    // gate, '=' two-qubit gate, 'M' readout.
    std::vector<std::string> rows(qc.qubitCount(),
                                  std::string(layers, '.'));
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t gi : schedule.layers[l]) {
            const Gate &g = qc.gates()[gi];
            char mark = '1';
            if (isTwoQubit(g.kind))
                mark = '=';
            else if (g.kind == GateKind::Measure)
                mark = 'M';
            rows[g.qubit0][l] = mark;
            if (isTwoQubit(g.kind))
                rows[g.qubit1][l] = mark;
        }
    }
    for (std::size_t q = 0; q < rows.size(); ++q) {
        char label[32];
        std::snprintf(label, sizeof label, "q%-3zu ", q);
        out << label << rows[q] << '\n';
    }
    if (schedule.layers.size() > layers)
        out << "(+" << schedule.layers.size() - layers
            << " more layers)\n";
    return out.str();
}

} // namespace youtiao
