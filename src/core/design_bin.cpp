#include "core/design_bin.hpp"

#include <fstream>
#include <limits>

#include "common/binfmt.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "core/serialization.hpp"

namespace youtiao {

namespace {

/** Flatten a group list CSR-style: offsets[g]..offsets[g+1] index the
 *  member array. */
struct FlatGroups
{
    std::vector<std::uint64_t> offsets;
    std::vector<std::uint64_t> members;
};

FlatGroups
flattenGroups(const std::vector<std::vector<std::size_t>> &groups)
{
    FlatGroups out;
    out.offsets.reserve(groups.size() + 1);
    out.offsets.push_back(0);
    std::size_t total = 0;
    for (const auto &g : groups)
        total += g.size();
    out.members.reserve(total);
    for (const auto &g : groups) {
        for (std::size_t v : g)
            out.members.push_back(v);
        out.offsets.push_back(out.members.size());
    }
    return out;
}

std::vector<std::vector<std::size_t>>
unflattenGroups(std::span<const std::uint64_t> offsets,
                std::span<const std::uint64_t> members,
                const std::string &what)
{
    requireConfig(!offsets.empty(),
                  what + ": group offsets section is empty");
    requireConfig(offsets.front() == 0 &&
                      offsets.back() == members.size(),
                  what + ": group offsets do not span the member "
                         "array");
    std::vector<std::vector<std::size_t>> groups(offsets.size() - 1);
    for (std::size_t g = 0; g + 1 < offsets.size(); ++g) {
        // Both bounds checked per group: a garbled non-monotonic table
        // must never index outside the member array.
        requireConfig(offsets[g] <= offsets[g + 1] &&
                          offsets[g + 1] <= members.size(),
                      what + ": group offsets are not monotonic");
        const std::size_t begin =
            static_cast<std::size_t>(offsets[g]);
        const std::size_t end =
            static_cast<std::size_t>(offsets[g + 1]);
        groups[g].assign(members.begin() + begin,
                         members.begin() + end);
    }
    return groups;
}

std::vector<std::uint64_t>
toU64(const std::vector<std::size_t> &v)
{
    return std::vector<std::uint64_t>(v.begin(), v.end());
}

std::vector<std::size_t>
toSize(std::span<const std::uint64_t> v)
{
    return std::vector<std::size_t>(v.begin(), v.end());
}

/** Pack the upper triangle (row-major, diagonal included). */
std::vector<double>
packTriangle(const SymmetricMatrix &m)
{
    std::vector<double> out;
    out.reserve(m.size() * (m.size() + 1) / 2);
    for (std::size_t i = 0; i < m.size(); ++i)
        for (std::size_t j = i; j < m.size(); ++j)
            out.push_back(m(i, j));
    return out;
}

SymmetricMatrix
unpackTriangle(std::span<const double> packed, std::size_t n,
               const std::string &what)
{
    requireConfig(packed.size() == n * (n + 1) / 2,
                  what + ": packed matrix size does not match the "
                         "qubit count");
    SymmetricMatrix m(n);
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            m(i, j) = packed[k++];
    return m;
}

YoutiaoDesign
designFromReader(const binfmt::Reader &reader)
{
    // youtiao-designbin-1 is the only payload layout so far; migrate
    // older sections forward here once a version 2 exists.
    switch (reader.schemaVersion()) {
      case 1:
        break;
      default:
        throw InternalError("design binary: unhandled schema version " +
                            std::to_string(reader.schemaVersion()));
    }

    YoutiaoDesign design;
    design.xyPlan.lines = unflattenGroups(
        reader.u64("xy_off"), reader.u64("xy_mem"), "design binary xy");
    design.xyPlan.lineOfQubit = toSize(reader.u64("xy_line_of"));

    const std::span<const double> freq = reader.f64("freq_ghz");
    design.frequencyPlan.frequencyGHz.assign(freq.begin(), freq.end());
    design.frequencyPlan.zoneOfQubit = toSize(reader.u64("freq_zone"));
    design.frequencyPlan.cellOfQubit = toSize(reader.u64("freq_cell"));
    const std::span<const std::uint64_t> zones =
        reader.u64("freq_zones");
    requireConfig(zones.size() == 1,
                  "design binary: freq_zones must hold one value");
    design.frequencyPlan.zoneCount =
        static_cast<std::size_t>(zones[0]);

    const std::span<const std::uint64_t> fanout =
        reader.u64("z_fanout");
    const std::vector<std::vector<std::size_t>> z_groups =
        unflattenGroups(reader.u64("z_off"), reader.u64("z_mem"),
                        "design binary z");
    requireConfig(fanout.size() == z_groups.size(),
                  "design binary: z_fanout disagrees with the TDM "
                  "group count");
    design.zPlan.groups.resize(z_groups.size());
    for (std::size_t g = 0; g < z_groups.size(); ++g) {
        design.zPlan.groups[g].devices = z_groups[g];
        design.zPlan.groups[g].fanout =
            static_cast<std::size_t>(fanout[g]);
    }
    design.zPlan.groupOfDevice = toSize(reader.u64("z_group_of"));

    design.readout.feedlines = unflattenGroups(
        reader.u64("ro_off"), reader.u64("ro_mem"),
        "design binary readout");
    design.readout.feedlineOfQubit = toSize(reader.u64("ro_line_of"));
    const std::span<const double> res = reader.f64("ro_res_ghz");
    design.readout.resonatorGHz.assign(res.begin(), res.end());
    design.readoutPlan.lines = design.readout.feedlines;
    design.readoutPlan.lineOfQubit = design.readout.feedlineOfQubit;

    const std::size_t qubits =
        design.frequencyPlan.frequencyGHz.size();
    design.predictedXy = unpackTriangle(reader.f64("pred_xy"), qubits,
                                        "design binary pred_xy");
    design.predictedZzMHz = unpackTriangle(
        reader.f64("pred_zz"), qubits, "design binary pred_zz");

    const std::span<const std::uint64_t> counts =
        reader.u64("counts");
    requireConfig(counts.size() == 7,
                  "design binary: counts must hold seven values");
    design.counts.xyLines = static_cast<std::size_t>(counts[0]);
    design.counts.zLines = static_cast<std::size_t>(counts[1]);
    design.counts.readoutFeeds = static_cast<std::size_t>(counts[2]);
    design.counts.readoutDacs = static_cast<std::size_t>(counts[3]);
    design.counts.demuxSelectLines =
        static_cast<std::size_t>(counts[4]);
    design.counts.demux12 = static_cast<std::size_t>(counts[5]);
    design.counts.demux14 = static_cast<std::size_t>(counts[6]);

    const std::span<const double> cost = reader.f64("cost_usd");
    requireConfig(cost.size() == 1,
                  "design binary: cost_usd must hold one value");
    design.costUsd = cost[0];

    validateDesign(design);
    return design;
}

} // namespace

std::vector<unsigned char>
designToBinary(const YoutiaoDesign &design)
{
    binfmt::Writer writer(kDesignBinMagic, kDesignBinVersion);

    const FlatGroups xy = flattenGroups(design.xyPlan.lines);
    writer.addU64("xy_off", xy.offsets);
    writer.addU64("xy_mem", xy.members);
    writer.addU64("xy_line_of", toU64(design.xyPlan.lineOfQubit));

    writer.addF64("freq_ghz", design.frequencyPlan.frequencyGHz);
    writer.addU64("freq_zone", toU64(design.frequencyPlan.zoneOfQubit));
    writer.addU64("freq_cell", toU64(design.frequencyPlan.cellOfQubit));
    const std::vector<std::uint64_t> zones{
        design.frequencyPlan.zoneCount};
    writer.addU64("freq_zones", zones);

    std::vector<std::uint64_t> fanout;
    std::vector<std::vector<std::size_t>> z_groups;
    fanout.reserve(design.zPlan.groups.size());
    z_groups.reserve(design.zPlan.groups.size());
    for (const TdmGroup &g : design.zPlan.groups) {
        fanout.push_back(g.fanout);
        z_groups.push_back(g.devices);
    }
    const FlatGroups z = flattenGroups(z_groups);
    writer.addU64("z_fanout", fanout);
    writer.addU64("z_off", z.offsets);
    writer.addU64("z_mem", z.members);
    writer.addU64("z_group_of", toU64(design.zPlan.groupOfDevice));

    const FlatGroups ro = flattenGroups(design.readout.feedlines);
    writer.addU64("ro_off", ro.offsets);
    writer.addU64("ro_mem", ro.members);
    writer.addU64("ro_line_of", toU64(design.readout.feedlineOfQubit));
    writer.addF64("ro_res_ghz", design.readout.resonatorGHz);

    writer.addF64("pred_xy", packTriangle(design.predictedXy));
    writer.addF64("pred_zz", packTriangle(design.predictedZzMHz));

    const std::vector<std::uint64_t> counts{
        design.counts.xyLines,
        design.counts.zLines,
        design.counts.readoutFeeds,
        design.counts.readoutDacs,
        design.counts.demuxSelectLines,
        design.counts.demux12,
        design.counts.demux14,
    };
    writer.addU64("counts", counts);
    const std::vector<double> cost{design.costUsd};
    writer.addF64("cost_usd", cost);

    return writer.toBytes();
}

void
saveDesignBinary(const std::string &path, const YoutiaoDesign &design)
{
    const std::vector<unsigned char> image = designToBinary(design);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    requireConfig(static_cast<bool>(out), "cannot write '" + path + "'");
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    requireConfig(static_cast<bool>(out),
                  "short write to '" + path + "'");
}

YoutiaoDesign
designFromBinary(const unsigned char *data, std::size_t size)
{
    const binfmt::Reader reader({data, size}, kDesignBinMagic,
                                kDesignBinVersion, "design binary");
    return designFromReader(reader);
}

YoutiaoDesign
loadDesignBinary(const std::string &path)
{
    const metrics::ScopedTimer timer("io.design_load_binary");
    const binfmt::MappedFile file(path);
    try {
        return designFromBinary(file.data(), file.size());
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

} // namespace youtiao
