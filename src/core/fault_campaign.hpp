/**
 * @file
 * Fault-injection campaign harness (DESIGN.md §9).
 *
 * A campaign sweeps seeded random chip defects (and, optionally, a
 * fault-injection spec for the pipeline's named sites) over a rate and
 * seed grid, runs the robust designer on every degraded chip, routes and
 * DRC-checks the survivors, and reports one structured record per run.
 * The harness itself never throws past configuration validation: every
 * pipeline failure becomes a structured error string in its run record,
 * which is the property the robustness tests assert.
 */

#ifndef YOUTIAO_CORE_FAULT_CAMPAIGN_HPP
#define YOUTIAO_CORE_FAULT_CAMPAIGN_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "chip/topology.hpp"
#include "core/youtiao.hpp"

namespace youtiao {

/** Campaign sweep parameters. */
struct FaultCampaignConfig
{
    /** Defect rates to sweep (each in [0, 1]). */
    std::vector<double> defectRates{0.01, 0.05, 0.10};
    /** Seeds per rate; run r of a rate uses taskSeed(baseSeed, index). */
    std::size_t seedsPerRate = 8;
    /** Master seed for defect generation and characterization. */
    std::uint64_t baseSeed = 2025;
    /**
     * Optional fault-injection spec (YOUTIAO_FAULTS grammar, see
     * common/fault.hpp) armed for the whole campaign. Site hit counters
     * run across the campaign's serial run order, so the sweep is
     * deterministic end to end. Empty = defects only.
     */
    std::string faultSpec;
    /** Route each surviving design and DRC-check the result. */
    bool route = true;
    /** Designer configuration applied to every run. */
    YoutiaoConfig designer;
};

/** One (rate, seed) cell of the sweep. */
struct FaultCampaignRun
{
    double defectRate = 0.0;
    std::uint64_t seed = 0;
    /** Defects actually injected into the chip. */
    std::size_t deadQubits = 0;
    std::size_t brokenCouplers = 0;
    std::size_t maskedBands = 0;
    /** A design was produced (possibly degraded). */
    bool ok = false;
    /** The design's ladder had to give something up. */
    bool degraded = false;
    /** Routing ran for this design. */
    bool routed = false;
    /** DRC verdict of the routed design (true when routing was off). */
    bool drcClean = true;
    std::size_t drcViolations = 0;
    std::size_t failedConnections = 0;
    /** Ladder outcome of the run's design. */
    DegradationReport degradation;
    double costUsd = 0.0;
    /** Structured failure description when !ok (DesignError::toString). */
    std::string error;
};

/** Whole-campaign result. */
struct FaultCampaignSummary
{
    std::string chipName;
    std::size_t chipQubits = 0;
    FaultCampaignConfig config;
    std::vector<FaultCampaignRun> runs;
    std::size_t okCount = 0;
    std::size_t failedCount = 0;
    std::size_t degradedCount = 0;
    std::size_t drcViolationCount = 0;

    /**
     * True iff every run is accounted for: either a design was produced
     * (DRC-clean when routed) or a non-empty structured error explains
     * why not. The campaign's acceptance property.
     */
    bool allRunsAccounted() const;

    /** Campaign record as JSON ("youtiao-fault-campaign-1" schema,
     *  documented in docs/FAULT_INJECTION.md). */
    std::string toJson() const;
};

/**
 * Run the sweep on @p chip. Serial and deterministic: the same chip,
 * config, and fault spec reproduce the same summary bit for bit.
 * Throws ConfigError only for invalid campaign configuration (bad rate,
 * zero seeds, malformed fault spec); per-run failures are recorded, not
 * thrown.
 */
FaultCampaignSummary runFaultCampaign(const ChipTopology &chip,
                                      const FaultCampaignConfig &config);

} // namespace youtiao

#endif // YOUTIAO_CORE_FAULT_CAMPAIGN_HPP
