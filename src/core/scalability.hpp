/**
 * @file
 * Large-scale system estimation (paper Section 5.6, Figure 17).
 *
 * For systems from tens to 100k qubits the full greedy grouping is
 * unnecessary: the DEMUX level mix follows directly from the parallelism
 * indices of the (cheaply computed) topology, and line counts follow from
 * full-packing arithmetic. The estimators here build the real grid
 * topology, classify devices by parallelism threshold, and tally coax and
 * cost for Google-style wiring, YOUTIAO, and IBM's chiplet scale-out.
 */

#ifndef YOUTIAO_CORE_SCALABILITY_HPP
#define YOUTIAO_CORE_SCALABILITY_HPP

#include <cstddef>
#include <vector>

#include "chip/topology.hpp"
#include "chip/topology_builder.hpp"
#include "core/config.hpp"
#include "core/hierarchical.hpp"

namespace youtiao {

/** One point of the scaling curves. */
struct ScalePoint
{
    std::size_t qubits = 0;
    std::size_t couplers = 0;
    /** Devices classified high-parallelism (1:2 DEMUX). */
    std::size_t highParallelismDevices = 0;
    std::size_t googleCoax = 0;
    std::size_t youtiaoCoax = 0;
    double googleCostUsd = 0.0;
    double youtiaoCostUsd = 0.0;

    double coaxReduction() const
    {
        return youtiaoCoax == 0 ? 0.0
                                : static_cast<double>(googleCoax) /
                                      static_cast<double>(youtiaoCoax);
    }
};

/**
 * Near-square grid with exactly @p qubits qubits (rows = floor(sqrt),
 * last row possibly partial), the topology of the paper's scaling study.
 */
ChipTopology makeGridWithQubitCount(std::size_t qubits,
                                    const BuilderOptions &opts = {});

/** Estimate one square-topology system of @p qubits qubits. */
ScalePoint estimateSquareSystem(std::size_t qubits,
                                const YoutiaoConfig &config = {});

/** Sweep several sizes (Figure 17 (a)/(d)). */
std::vector<ScalePoint> sweepSquareSystems(
    const std::vector<std::size_t> &sizes, const YoutiaoConfig &config = {});

/** IBM-chiplet comparison point (Figure 17 (c)). */
struct ChipletComparison
{
    std::size_t copies = 0;
    std::size_t qubitsPerChiplet = 0;
    std::size_t totalQubits = 0;
    /** Dedicated-wiring cables across all chiplets. */
    std::size_t ibmCoax = 0;
    /** YOUTIAO-multiplexed cables for the same chiplets. */
    std::size_t youtiaoCoax = 0;

    double cableReduction() const
    {
        return youtiaoCoax == 0 ? 0.0
                                : static_cast<double>(ibmCoax) /
                                      static_cast<double>(youtiaoCoax);
    }
};

/**
 * Compare dedicated vs YOUTIAO wiring over @p copies of a ~133-qubit
 * heavy-hexagon chiplet (a 4x5-cell heavy honeycomb, 135 qubits -- the
 * closest tiling to IBM's 133-qubit Heron).
 */
ChipletComparison compareIbmChiplet(std::size_t copies,
                                    const YoutiaoConfig &config = {});

/**
 * A concrete hierarchical design audited against the closed-form
 * estimate (Figure 17 scaling model). The analytic curve assumes every
 * FDM line is full and every DEMUX slot used; a stitched tiled design
 * fragments groups at tile boundaries, so its coax count sits above the
 * estimate by a bounded factor. The band is the scalability
 * cross-check: a merged design outside it means the stitch dropped or
 * duplicated lines.
 */
struct HierarchicalCrossCheck
{
    std::size_t actualCoax = 0;
    std::size_t analyticCoax = 0;
    /** actual / analytic. */
    double ratio = 0.0;
    double bandLo = 0.0;
    double bandHi = 0.0;
    bool withinBand = false;
};

/**
 * Cross-check @p design's merged wiring tally against the analytic
 * estimate for @p chip. Band defaults cover grid chips from one tile up
 * to ~200 tiles (fragmentation grows with the seam count but stays
 * well under the default ceiling; pinned by tests/test_hierarchical.cpp).
 */
HierarchicalCrossCheck
crossCheckHierarchicalCounts(const ChipTopology &chip,
                             const HierarchicalDesign &design,
                             const YoutiaoConfig &config = {},
                             double band_lo = 0.6, double band_hi = 1.7);

} // namespace youtiao

#endif // YOUTIAO_CORE_SCALABILITY_HPP
