/**
 * @file
 * Hierarchical scale-out of the YOUTIAO designer (DESIGN.md §10).
 *
 * The flat designer and router are superlinear in chip size, so systems
 * beyond a few hundred qubits are designed tile by tile: the chip is cut
 * into a rectangular tile lattice, each tile runs the full existing
 * pipeline independently (parallel across the work-stealing pool,
 * deterministic per-tile seeds), and the results are stitched back
 * together --
 *
 *  - plans are lifted to global indices and concatenated (plan_merge);
 *  - couplers crossing a seam get their own always-realizable TDM
 *    groups;
 *  - a boundary-aware frequency pass retunes near-seam qubits whose
 *    cross-seam spectral crosstalk exceeds the seam epsilon, so FDM
 *    groups facing each other across a cut stay as clean as in-tile
 *    ones;
 *  - tile-level routing terminates at each tile's perimeter, and the
 *    corridor router carries every net through the reserved seam
 *    corridors to the chip boundary over 64-bit segment indices.
 *
 * Differential contract (the correctness backbone, pinned by
 * tests/test_hierarchical.cpp): with a single tile covering the whole
 * chip, every field of the merged design is bit-identical to the flat
 * designer's output -- the hierarchy is pure plumbing until there is
 * more than one tile. At every scale the stitched result must pass the
 * routing DRC, the seam crosstalk threshold, and the
 * DegradationReport-clean invariants on a healthy chip.
 */

#ifndef YOUTIAO_CORE_HIERARCHICAL_HPP
#define YOUTIAO_CORE_HIERARCHICAL_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "chip/topology.hpp"
#include "common/expected.hpp"
#include "core/youtiao.hpp"
#include "routing/chip_router.hpp"
#include "routing/corridor_router.hpp"
#include "routing/drc.hpp"

namespace youtiao {

/**
 * Assignment of qubits to a rectangular tile lattice. Tile ids are
 * iy * tilesX + ix; cut coordinates include the outer chip edges. Empty
 * tiles are legal in the map (the designer drops them).
 */
struct TileMap
{
    std::size_t tilesX = 1;
    std::size_t tilesY = 1;
    /** Ascending tile boundaries (mm), size tilesX + 1 / tilesY + 1. */
    std::vector<double> xCutsMm;
    std::vector<double> yCutsMm;
    /** Tile id per qubit. */
    std::vector<std::size_t> tileOfQubit;

    std::size_t tileCount() const { return tilesX * tilesY; }
};

/**
 * Cut the chip's qubit bounding box into near-square tiles of about
 * @p tile_size_qubits qubits each (0, or a size >= the qubit count,
 * yields the single-tile map). Assignment is geometric: a qubit belongs
 * to the tile whose cell contains its position (half-open, clamped).
 */
TileMap makeUniformTileMap(const ChipTopology &chip,
                           std::size_t tile_size_qubits);

/** Throw ConfigError unless @p map is well-formed for @p qubit_count. */
void validateTileMap(const TileMap &map, std::size_t qubit_count);

/** Hierarchical designer knobs. */
struct HierarchicalConfig
{
    /** Target qubits per tile; 0 = one tile spanning the chip. */
    std::size_t tileSizeQubits = 64;
    /**
     * Half-width of the seam band (mm) within which qubits participate
     * in the boundary stitch; 0 = auto (2.05x the median coupler span,
     * covering nearest and next-nearest cross-seam neighbours).
     */
    double seamRadiusMm = 0.0;
    /**
     * A cross-seam pair whose spectral crosstalk cost
     * (crosstalk * Lorentzian overlap) exceeds this retunes one of its
     * qubits. Calibrated against the flat allocator's residual per-pair
     * costs on grid chips (worst in-tile pairs sit well below 1e-4).
     */
    double seamCrosstalkEpsilon = 1e-4;
    /** Retune sweeps over the seam band (even passes move the
     *  higher-tile endpoint of a hot pair, odd passes the lower). */
    std::size_t maxSeamPasses = 4;
};

/** One designed tile. */
struct HierarchicalTile
{
    /** Lattice coordinates of this tile. */
    std::size_t ix = 0;
    std::size_t iy = 0;
    /** Global qubit index per local qubit (ascending). */
    std::vector<std::size_t> qubits;
    /** Global coupler index per local coupler (both endpoints inside). */
    std::vector<std::size_t> couplers;
    /** The tile sub-chip (global coordinates, local indices). */
    ChipTopology chip;
    /** The flat pipeline's design for this tile (local indices). */
    YoutiaoDesign design;
};

/** Everything the hierarchical pipeline produces. */
struct HierarchicalDesign
{
    TileMap map;
    /** Non-empty tiles, in tile-id order. */
    std::vector<HierarchicalTile> tiles;
    /** Dense tile index (into tiles) per qubit. */
    std::vector<std::size_t> tileOfQubit;
    /** Global coupler indices crossing a seam (ascending). */
    std::vector<std::size_t> seamCouplers;
    /** Stitched chip-wide design (global indices). */
    YoutiaoDesign merged;

    // Seam-stitch diagnostics.
    std::size_t seamPairsChecked = 0;
    std::size_t seamRetunes = 0;
    std::size_t seamViolationsUnresolved = 0;
    /** Largest cross-seam pair cost after stitching. */
    double maxSeamCrosstalk = 0.0;
    double seamRadiusMmUsed = 0.0;
};

/** The tiled pipeline. */
class HierarchicalDesigner
{
  public:
    explicit HierarchicalDesigner(YoutiaoConfig config = {},
                                  HierarchicalConfig hierarchical = {});

    const YoutiaoConfig &config() const { return config_; }
    const HierarchicalConfig &hierarchical() const { return hier_; }

    /**
     * Fit-free tiled design from measured matrices (sliced per tile).
     * With a single tile the result's merged design is bit-identical to
     * YoutiaoDesigner::designFromMeasurements.
     */
    HierarchicalDesign
    designFromMeasurements(const ChipTopology &chip,
                           const ChipCharacterization &data,
                           double w_phy = 0.6) const;

    HierarchicalDesign
    designFromMeasurements(const ChipTopology &chip, const TileMap &map,
                           const ChipCharacterization &data,
                           double w_phy = 0.6) const;

    /**
     * Scale path: characterize each tile synthetically (per-tile seeded
     * measurement, O(tile^2) instead of O(chip^2)) and design from those
     * measurements. The merged design leaves the global predicted
     * matrices empty -- at 10k+ qubits they would not fit memory.
     */
    HierarchicalDesign designSynthesized(const ChipTopology &chip,
                                         double w_phy = 0.6) const;

    HierarchicalDesign designSynthesized(const ChipTopology &chip,
                                         const TileMap &map,
                                         double w_phy = 0.6) const;

    /**
     * Structured-error variants of the two entry points above. A tile
     * whose design fails, or a cooperative abort (common/cancel.hpp),
     * comes back as a DesignError instead of an exception; cancellation
     * carries code Cancelled/DeadlineExceeded and, when @p partial is
     * non-null, records how far the tile fan-out got ("cancelled after
     * N of M tiles") so a deadline-killed run still reports structured
     * progress.
     */
    Expected<HierarchicalDesign, DesignError>
    designSynthesizedRobust(const ChipTopology &chip, double w_phy = 0.6,
                            DegradationReport *partial = nullptr) const;

    Expected<HierarchicalDesign, DesignError>
    designFromMeasurementsRobust(const ChipTopology &chip,
                                 const ChipCharacterization &data,
                                 double w_phy = 0.6,
                                 DegradationReport *partial = nullptr) const;

  private:
    HierarchicalDesign designTiles(const ChipTopology &chip, TileMap map,
                                   const ChipCharacterization *data,
                                   double w_phy,
                                   std::atomic<std::size_t> *tiles_done
                                   = nullptr,
                                   std::size_t *tiles_total
                                   = nullptr) const;

    /** Boundary-aware frequency retune over the seam band. */
    void stitchSeamsImpl(const ChipTopology &chip,
                         const ChipCharacterization *data,
                         HierarchicalDesign &out) const;

    YoutiaoConfig config_;
    HierarchicalConfig hier_;
};

/** Tile routing defaults tuned for the hierarchical path: coarser cells
 *  and a strongly goal-directed A* keep a 64-qubit tile under a second
 *  while staying DRC-clean (bench_fig17 part (f) pins this). */
ChipRoutingConfig tunedTileRoutingConfig();

/** Hierarchical routing knobs. */
struct HierarchicalRoutingConfig
{
    /** Per-tile maze-routing configuration. */
    ChipRoutingConfig tile = tunedTileRoutingConfig();
    /** Seam corridor routing configuration. */
    CorridorConfig corridor;
    /**
     * Upper bound on one tile's A* SearchArena working memory; a tile
     * whose routing grid would exceed it raises ConfigError up front
     * (shrink the tiles or coarsen the cells) instead of thrashing.
     */
    std::size_t maxArenaBytes = 512ull << 20;
};

/** Chip-level result of hierarchical routing. */
struct HierarchicalRouting
{
    /** Per tile, in HierarchicalDesign::tiles order. */
    std::vector<RoutedWiring> tiles;
    std::vector<DrcReport> tileDrc;
    CorridorLattice lattice;
    /** Corridor entry segment per corridor net (all tile nets in
     *  (tile, net) order, then one net per seam TDM group). */
    std::vector<std::uint64_t> corridorEntries;
    CorridorResult corridor;
    CorridorDrcReport corridorDrc;

    std::size_t totalNets = 0;
    std::size_t failedConnections = 0;
    double totalLengthMm = 0.0;
    /** Largest per-tile arena estimate (bytes). */
    std::size_t peakArenaBytes = 0;

    /** Every tile DRC-clean, corridors clean, nothing failed. */
    bool clean() const;
};

/**
 * Route a hierarchical design: every tile's nets through the tile-level
 * maze router (parallel across tiles), then every net from its tile
 * perimeter through the seam corridors to the chip boundary, plus one
 * corridor net per seam TDM group.
 */
HierarchicalRouting
routeHierarchical(const ChipTopology &chip,
                  const HierarchicalDesign &design,
                  const HierarchicalRoutingConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_CORE_HIERARCHICAL_HPP
