#include "core/baselines.hpp"

#include "common/error.hpp"

namespace youtiao {

namespace {

std::vector<double>
fabricationFrequencies(const ChipTopology &chip)
{
    std::vector<double> f;
    f.reserve(chip.qubitCount());
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        f.push_back(chip.qubit(q).baseFrequencyGHz);
    return f;
}

FdmPlan
readoutGroups(const ChipTopology &chip, const YoutiaoConfig &config)
{
    return groupFdmLocalCluster(chip, config.cost.readoutFeedCapacity);
}

void
finishCounts(const ChipTopology &chip, BaselineDesign &design,
             const YoutiaoConfig &config)
{
    design.counts = multiplexedWiringCounts(chip.qubitCount(),
                                            design.xyPlan, design.zPlan,
                                            config.cost);
    design.costUsd = wiringCostUsd(design.counts, config.cost);
}

} // namespace

BaselineDesign
designGoogleWiring(const ChipTopology &chip, const YoutiaoConfig &config,
                   const SymmetricMatrix *measured_xy)
{
    BaselineDesign design;
    design.xyPlan = groupFdmLocalCluster(chip, 1); // dedicated XY lines
    if (measured_xy != nullptr) {
        // Dedicated lines leave full spectral freedom: model Google's
        // frequency-aware calibration by running the allocator with a
        // single zone (capacity-1 plan) over the measured crosstalk.
        design.frequencyPlan = allocateFrequencies(
            design.xyPlan, *measured_xy, NoiseModel(config.noise),
            config.frequency);
    } else {
        design.frequencyPlan = allocateFrequenciesFabrication(
            design.xyPlan, fabricationFrequencies(chip));
    }
    design.zPlan = dedicatedZPlan(chip);
    design.readoutPlan = readoutGroups(chip, config);
    finishCounts(chip, design, config);
    return design;
}

BaselineDesign
designGeorgeFdm(const ChipTopology &chip, const YoutiaoConfig &config)
{
    BaselineDesign design;
    design.xyPlan = groupFdmLocalCluster(chip, config.fdm.lineCapacity);
    design.frequencyPlan = allocateFrequenciesInLineOnly(design.xyPlan,
                                                         config.frequency);
    design.zPlan = dedicatedZPlan(chip);
    design.readoutPlan = readoutGroups(chip, config);
    finishCounts(chip, design, config);
    return design;
}

BaselineDesign
designUnoptimizedFdm(const ChipTopology &chip, const YoutiaoConfig &config)
{
    BaselineDesign design;
    design.xyPlan = groupFdmLocalCluster(chip, config.fdm.lineCapacity);
    design.frequencyPlan = allocateFrequenciesFabrication(
        design.xyPlan, fabricationFrequencies(chip));
    design.zPlan = dedicatedZPlan(chip);
    design.readoutPlan = readoutGroups(chip, config);
    finishCounts(chip, design, config);
    return design;
}

BaselineDesign
designAcharyaTdm(const ChipTopology &chip, const YoutiaoConfig &config,
                 const SymmetricMatrix *measured_xy)
{
    BaselineDesign design;
    design.xyPlan = groupFdmLocalCluster(chip, 1); // dedicated XY lines
    if (measured_xy != nullptr) {
        design.frequencyPlan = allocateFrequencies(
            design.xyPlan, *measured_xy, NoiseModel(config.noise),
            config.frequency);
    } else {
        design.frequencyPlan = allocateFrequenciesFabrication(
            design.xyPlan, fabricationFrequencies(chip));
    }
    design.zPlan = groupTdmLocalCluster(chip,
                                        config.tdm.lowParallelismFanout,
                                        config.tdm);
    design.readoutPlan = readoutGroups(chip, config);
    finishCounts(chip, design, config);
    return design;
}

FidelityContext
makeBaselineFidelityContext(const ChipTopology &chip,
                            const BaselineDesign &design,
                            const SymmetricMatrix &xy,
                            const SymmetricMatrix &zz,
                            const YoutiaoConfig &config)
{
    requireConfig(xy.size() == chip.qubitCount() &&
                      zz.size() == chip.qubitCount(),
                  "crosstalk matrices must cover the chip");
    FidelityContext ctx;
    ctx.noise = NoiseModel(config.noise);
    ctx.xyCoupling = xy;
    ctx.zzMHz = zz;
    ctx.frequencyGHz = design.frequencyPlan.frequencyGHz;
    // Dedicated XY lines (capacity-1 plans) disable shared-line leakage.
    if (design.xyPlan.maxGroupSize() <= 1) {
        ctx.fdmLineOfQubit.assign(chip.qubitCount(),
                                  FidelityContext::kDedicated);
    } else {
        ctx.fdmLineOfQubit = design.xyPlan.lineOfQubit;
    }
    ctx.t1Ns.reserve(chip.qubitCount());
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        ctx.t1Ns.push_back(chip.qubit(q).t1Ns);
    return ctx;
}

} // namespace youtiao
