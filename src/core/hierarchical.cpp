#include "core/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "core/checkpoint_codec.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/prng.hpp"
#include "common/trace.hpp"
#include "common/units.hpp"
#include "multiplex/parallelism_index.hpp"
#include "multiplex/plan_merge.hpp"
#include "noise/crosstalk_data.hpp"
#include "noise/noise_model.hpp"

namespace youtiao {

namespace {

/** Clamped geometric bin of @p v over ascending cuts. */
std::size_t
binOf(double v, const std::vector<double> &cuts)
{
    const std::size_t bins = cuts.size() - 1;
    const auto it = std::upper_bound(cuts.begin() + 1, cuts.end() - 1, v);
    const auto bin = static_cast<std::size_t>(
        std::distance(cuts.begin() + 1, it));
    return std::min(bin, bins - 1);
}

/** Median coupler span (mm): the chip's effective device pitch. */
double
medianCouplerSpanMm(const ChipTopology &chip)
{
    std::vector<double> spans;
    spans.reserve(chip.couplerCount());
    for (const CouplerInfo &c : chip.couplers())
        spans.push_back(chip.physicalDistance(c.qubitA, c.qubitB));
    if (spans.empty()) {
        const Point box = chip.boundingBox();
        const double side = std::max(box.x, box.y);
        return std::max(
            1.0, side / std::sqrt(static_cast<double>(
                            std::max<std::size_t>(1, chip.qubitCount()))));
    }
    std::nth_element(spans.begin(),
                     spans.begin() + static_cast<long>(spans.size() / 2),
                     spans.end());
    return spans[spans.size() / 2];
}

bool
isMaskedGHz(double f,
            const std::vector<std::pair<double, double>> &masked)
{
    for (const auto &[lo, hi] : masked) {
        if (f >= lo && f < hi)
            return true;
    }
    return false;
}

/**
 * Multi-path topological distance hops * shortest-path-count between two
 * qubits, bounded to @p max_depth hops (the seam band only ever needs
 * the local neighbourhood; a full multiPathBfs per near-seam qubit would
 * be O(chip) each). Pairs farther than the bound read as 2x the bound --
 * far enough that the exponential crosstalk law floors out.
 */
double
localTopologicalDistance(const Graph &graph, std::size_t a, std::size_t b,
                         std::size_t max_depth)
{
    if (a == b)
        return 0.0;
    std::unordered_map<std::size_t, double> count;
    count[a] = 1.0;
    std::vector<std::size_t> frontier{a};
    std::unordered_map<std::size_t, double> next_count;
    for (std::size_t depth = 1; depth <= max_depth; ++depth) {
        next_count.clear();
        for (std::size_t v : frontier) {
            for (std::size_t n : graph.neighbors(v)) {
                if (count.find(n) != count.end())
                    continue; // reached at an earlier level
                next_count[n] += count[v];
            }
        }
        const auto hit = next_count.find(b);
        if (hit != next_count.end())
            return static_cast<double>(depth) * hit->second;
        frontier.clear();
        for (const auto &[v, c] : next_count) {
            count[v] = c;
            frontier.push_back(v);
        }
    }
    return 2.0 * static_cast<double>(max_depth);
}

/** Spatial-hash key of a position at @p cell granularity. */
std::uint64_t
hashCell(const Point &p, double cell)
{
    const auto ix = static_cast<std::int64_t>(std::floor(p.x / cell));
    const auto iy = static_cast<std::int64_t>(std::floor(p.y / cell));
    return (static_cast<std::uint64_t>(ix + (1ll << 30)) << 32) ^
           static_cast<std::uint64_t>(iy + (1ll << 30));
}

struct SeamNeighbor
{
    std::size_t other = 0;
    double crosstalk = 0.0;
};

/** Map a cooperative abort onto the structured error ladder. */
DesignError
cancelledError(const cancel::Cancelled &e)
{
    const DesignErrorCode code =
        e.reason() == cancel::Reason::DeadlineExceeded
            ? DesignErrorCode::DeadlineExceeded
            : DesignErrorCode::Cancelled;
    return DesignError(DesignStage::Validation, e.what(), code)
        .with("where", e.where());
}

// Checkpoint payloads for the per-tile barriers. Every field the merge,
// seam stitch, and hierarchical router read from a tile design is
// serialized byte-exactly (checkpoint::ByteWriter memcpy's doubles), so
// a resumed run replays the remaining tiles against identical inputs
// and lands on a bit-identical artifact. The fitted models and
// predicted matrices are deliberately skipped: the multi-tile merge
// never reads them, and at scale they dominate the snapshot size.

std::vector<std::uint8_t>
packTileDesign(const YoutiaoDesign &d)
{
    checkpoint::ByteWriter w;
    w.vecVecU64(d.partition.regions);
    w.vecU64(d.partition.regionOfQubit);
    w.vecU64(d.partition.seeds);
    w.u64(d.partition.swapCount);
    ckptcodec::putFdmPlan(w, d.xyPlan);
    ckptcodec::putFrequencyPlan(w, d.frequencyPlan);
    ckptcodec::putTdmPlan(w, d.zPlan);
    ckptcodec::putFdmPlan(w, d.readoutPlan);
    w.vecVecU64(d.readout.feedlines);
    w.vecU64(d.readout.feedlineOfQubit);
    w.vecF64(d.readout.resonatorGHz);
    w.u64(d.counts.xyLines);
    w.u64(d.counts.zLines);
    w.u64(d.counts.readoutFeeds);
    w.u64(d.counts.readoutDacs);
    w.u64(d.counts.demuxSelectLines);
    w.u64(d.counts.demux12);
    w.u64(d.counts.demux14);
    w.f64(d.costUsd);
    ckptcodec::putDegradation(w, d.degradation);
    return w.bytes();
}

YoutiaoDesign
unpackTileDesign(const std::vector<std::uint8_t> &bytes)
{
    checkpoint::ByteReader r(bytes);
    YoutiaoDesign d;
    d.partition.regions = r.vecVecU64();
    d.partition.regionOfQubit = r.vecU64();
    d.partition.seeds = r.vecU64();
    d.partition.swapCount = r.u64();
    d.xyPlan = ckptcodec::getFdmPlan(r);
    d.frequencyPlan = ckptcodec::getFrequencyPlan(r);
    d.zPlan = ckptcodec::getTdmPlan(r);
    d.readoutPlan = ckptcodec::getFdmPlan(r);
    d.readout.feedlines = r.vecVecU64();
    d.readout.feedlineOfQubit = r.vecU64();
    d.readout.resonatorGHz = r.vecF64();
    d.counts.xyLines = r.u64();
    d.counts.zLines = r.u64();
    d.counts.readoutFeeds = r.u64();
    d.counts.readoutDacs = r.u64();
    d.counts.demuxSelectLines = r.u64();
    d.counts.demux12 = r.u64();
    d.counts.demux14 = r.u64();
    d.costUsd = r.f64();
    d.degradation = ckptcodec::getDegradation(r);
    requireConfig(r.exhausted(),
                  "tile design snapshot has trailing bytes");
    return d;
}

// Route snapshots skip the occupancy grid (it is only consumed by the
// DRC, whose verdict is snapshotted alongside) -- at 10k qubits the
// grids dwarf every other artifact combined.

std::vector<std::uint8_t>
packTileRoute(const RoutedWiring &wiring, const DrcReport &drc)
{
    const ChipRoutingResult &res = wiring.result;
    checkpoint::ByteWriter w;
    w.u64(res.netCount);
    w.u64(res.failedConnections);
    w.vecU64(res.failedNets);
    w.u64(res.retryPasses);
    w.f64(res.totalLengthMm);
    w.f64(res.routingAreaMm2);
    w.u64(res.interfaceCount);
    w.u64(res.interfaces.size());
    for (const Point &p : res.interfaces) {
        w.f64(p.x);
        w.f64(p.y);
    }
    w.u64(res.crossovers.size());
    for (const Crossover &c : res.crossovers) {
        w.u64(c.cell.x);
        w.u64(c.cell.y);
        w.u64(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(c.byNet)));
        w.u64(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(c.overNet)));
    }
    w.vecU64(wiring.fallbackNets);
    w.u64(wiring.dedicatedNetFallbacks);
    w.boolean(drc.clean);
    w.vecStr(drc.violations);
    return w.bytes();
}

void
unpackTileRoute(const std::vector<std::uint8_t> &bytes,
                RoutedWiring &wiring, DrcReport &drc)
{
    checkpoint::ByteReader r(bytes);
    ChipRoutingResult &res = wiring.result;
    res.netCount = r.u64();
    res.failedConnections = r.u64();
    res.failedNets = r.vecU64();
    res.retryPasses = r.u64();
    res.totalLengthMm = r.f64();
    res.routingAreaMm2 = r.f64();
    res.interfaceCount = r.u64();
    res.interfaces.resize(r.u64());
    for (Point &p : res.interfaces) {
        p.x = r.f64();
        p.y = r.f64();
    }
    res.crossovers.resize(r.u64());
    for (Crossover &c : res.crossovers) {
        c.cell.x = r.u64();
        c.cell.y = r.u64();
        c.byNet = static_cast<std::int32_t>(
            static_cast<std::int64_t>(r.u64()));
        c.overNet = static_cast<std::int32_t>(
            static_cast<std::int64_t>(r.u64()));
    }
    wiring.fallbackNets = r.vecU64();
    wiring.dedicatedNetFallbacks = r.u64();
    drc.clean = r.boolean();
    drc.violations = r.vecStr();
    requireConfig(r.exhausted(),
                  "tile route snapshot has trailing bytes");
}

} // namespace

TileMap
makeUniformTileMap(const ChipTopology &chip, std::size_t tile_size_qubits)
{
    requireConfig(chip.qubitCount() > 0, "cannot tile an empty chip");
    const std::size_t q_count = chip.qubitCount();

    double lo_x = std::numeric_limits<double>::infinity();
    double lo_y = lo_x;
    double hi_x = -lo_x;
    double hi_y = -lo_x;
    for (const QubitInfo &q : chip.qubits()) {
        lo_x = std::min(lo_x, q.position.x);
        lo_y = std::min(lo_y, q.position.y);
        hi_x = std::max(hi_x, q.position.x);
        hi_y = std::max(hi_y, q.position.y);
    }

    TileMap map;
    if (tile_size_qubits == 0 || tile_size_qubits >= q_count) {
        map.tilesX = 1;
        map.tilesY = 1;
    } else {
        const std::size_t tiles =
            (q_count + tile_size_qubits - 1) / tile_size_qubits;
        map.tilesX = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(tiles))));
        map.tilesY = (tiles + map.tilesX - 1) / map.tilesX;
    }
    // Degenerate extents (all qubits on one line) still need a nonzero
    // cell width for the geometric assignment.
    const double width = std::max(hi_x - lo_x, 1e-9);
    const double height = std::max(hi_y - lo_y, 1e-9);
    map.xCutsMm.resize(map.tilesX + 1);
    map.yCutsMm.resize(map.tilesY + 1);
    for (std::size_t i = 0; i <= map.tilesX; ++i)
        map.xCutsMm[i] =
            lo_x + width * static_cast<double>(i) /
                       static_cast<double>(map.tilesX);
    for (std::size_t j = 0; j <= map.tilesY; ++j)
        map.yCutsMm[j] =
            lo_y + height * static_cast<double>(j) /
                       static_cast<double>(map.tilesY);

    map.tileOfQubit.resize(q_count);
    for (std::size_t q = 0; q < q_count; ++q) {
        const Point &p = chip.qubit(q).position;
        const std::size_t ix = binOf(p.x, map.xCutsMm);
        const std::size_t iy = binOf(p.y, map.yCutsMm);
        map.tileOfQubit[q] = iy * map.tilesX + ix;
    }
    return map;
}

void
validateTileMap(const TileMap &map, std::size_t qubit_count)
{
    requireConfig(map.tilesX >= 1 && map.tilesY >= 1,
                  "tile map needs at least one tile per axis");
    requireConfig(map.xCutsMm.size() == map.tilesX + 1 &&
                      map.yCutsMm.size() == map.tilesY + 1,
                  "tile map cut lists do not match the lattice shape");
    requireConfig(std::is_sorted(map.xCutsMm.begin(), map.xCutsMm.end()) &&
                      std::is_sorted(map.yCutsMm.begin(),
                                     map.yCutsMm.end()),
                  "tile map cuts must be ascending");
    requireConfig(map.tileOfQubit.size() == qubit_count,
                  "tile map does not cover every qubit exactly once");
    for (std::size_t t : map.tileOfQubit)
        requireConfig(t < map.tileCount(),
                      "tile map assigns a qubit to a nonexistent tile");
}

HierarchicalDesigner::HierarchicalDesigner(YoutiaoConfig config,
                                           HierarchicalConfig hierarchical)
    : config_(config), hier_(hierarchical)
{}

HierarchicalDesign
HierarchicalDesigner::designFromMeasurements(
    const ChipTopology &chip, const ChipCharacterization &data,
    double w_phy) const
{
    return designFromMeasurements(
        chip, makeUniformTileMap(chip, hier_.tileSizeQubits), data, w_phy);
}

HierarchicalDesign
HierarchicalDesigner::designFromMeasurements(
    const ChipTopology &chip, const TileMap &map,
    const ChipCharacterization &data, double w_phy) const
{
    requireConfig(data.xyCrosstalk.size() == chip.qubitCount() &&
                      data.zzCrosstalkMHz.size() == chip.qubitCount(),
                  "characterization does not match the chip");
    return designTiles(chip, map, &data, w_phy);
}

HierarchicalDesign
HierarchicalDesigner::designSynthesized(const ChipTopology &chip,
                                        double w_phy) const
{
    return designSynthesized(
        chip, makeUniformTileMap(chip, hier_.tileSizeQubits), w_phy);
}

HierarchicalDesign
HierarchicalDesigner::designSynthesized(const ChipTopology &chip,
                                        const TileMap &map,
                                        double w_phy) const
{
    return designTiles(chip, map, nullptr, w_phy);
}

Expected<HierarchicalDesign, DesignError>
HierarchicalDesigner::designSynthesizedRobust(
    const ChipTopology &chip, double w_phy,
    DegradationReport *partial) const
{
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    try {
        return designTiles(chip,
                           makeUniformTileMap(chip, hier_.tileSizeQubits),
                           nullptr, w_phy, &done, &total);
    } catch (const cancel::Cancelled &e) {
        if (partial != nullptr)
            partial->notes.push_back(
                "cancelled after " + std::to_string(done.load()) +
                " of " + std::to_string(total) + " tiles designed");
        return cancelledError(e)
            .with("tiles_designed", done.load())
            .with("tiles_total", total);
    } catch (const std::exception &e) {
        return DesignError(DesignStage::Validation, e.what());
    }
}

Expected<HierarchicalDesign, DesignError>
HierarchicalDesigner::designFromMeasurementsRobust(
    const ChipTopology &chip, const ChipCharacterization &data,
    double w_phy, DegradationReport *partial) const
{
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    try {
        requireConfig(data.xyCrosstalk.size() == chip.qubitCount() &&
                          data.zzCrosstalkMHz.size() == chip.qubitCount(),
                      "characterization does not match the chip");
        return designTiles(chip,
                           makeUniformTileMap(chip, hier_.tileSizeQubits),
                           &data, w_phy, &done, &total);
    } catch (const cancel::Cancelled &e) {
        if (partial != nullptr)
            partial->notes.push_back(
                "cancelled after " + std::to_string(done.load()) +
                " of " + std::to_string(total) + " tiles designed");
        return cancelledError(e)
            .with("tiles_designed", done.load())
            .with("tiles_total", total);
    } catch (const std::exception &e) {
        return DesignError(DesignStage::Validation, e.what());
    }
}

HierarchicalDesign
HierarchicalDesigner::designTiles(const ChipTopology &chip, TileMap map,
                                  const ChipCharacterization *data,
                                  double w_phy,
                                  std::atomic<std::size_t> *tiles_done,
                                  std::size_t *tiles_total) const
{
    const metrics::ScopedTimer timer("hier.design");
    const trace::TraceSpan span("hier.design", "hier");
    validateTileMap(map, chip.qubitCount());

    HierarchicalDesign out;
    out.map = std::move(map);

    // Tile extraction: qubits by geometric bin, couplers into the tile
    // holding both endpoints, stragglers onto the seam list.
    std::vector<std::vector<std::size_t>> tile_qubits(out.map.tileCount());
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        tile_qubits[out.map.tileOfQubit[q]].push_back(q);
    for (std::size_t t = 0; t < out.map.tileCount(); ++t) {
        if (tile_qubits[t].empty())
            continue;
        HierarchicalTile tile;
        tile.ix = t % out.map.tilesX;
        tile.iy = t / out.map.tilesX;
        tile.qubits = std::move(tile_qubits[t]);
        out.tiles.push_back(std::move(tile));
    }
    requireConfig(!out.tiles.empty(), "tile map left every tile empty");
    out.tileOfQubit.resize(chip.qubitCount());
    for (std::size_t i = 0; i < out.tiles.size(); ++i)
        for (std::size_t q : out.tiles[i].qubits)
            out.tileOfQubit[q] = i;

    std::vector<std::size_t> local_of_qubit(chip.qubitCount());
    for (const HierarchicalTile &tile : out.tiles)
        for (std::size_t l = 0; l < tile.qubits.size(); ++l)
            local_of_qubit[tile.qubits[l]] = l;

    for (std::size_t c = 0; c < chip.couplerCount(); ++c) {
        const CouplerInfo &info = chip.coupler(c);
        const std::size_t ta = out.tileOfQubit[info.qubitA];
        const std::size_t tb = out.tileOfQubit[info.qubitB];
        if (ta == tb)
            out.tiles[ta].couplers.push_back(c);
        else
            out.seamCouplers.push_back(c);
    }

    // Build each tile's sub-chip: global coordinates, local indices,
    // original order (the differential contract depends on it).
    for (HierarchicalTile &tile : out.tiles) {
        tile.chip = ChipTopology(chip.name() + " tile (" +
                                 std::to_string(tile.ix) + "," +
                                 std::to_string(tile.iy) + ")");
        for (std::size_t q : tile.qubits)
            tile.chip.addQubit(chip.qubit(q));
        for (std::size_t c : tile.couplers) {
            const CouplerInfo &info = chip.coupler(c);
            tile.chip.addCoupler(local_of_qubit[info.qubitA],
                                 local_of_qubit[info.qubitB],
                                 info.position);
        }
    }

    // Per-tile designs on the pool. Seeds: a single tile inherits the
    // master seed untouched (bit-identity with the flat path); multiple
    // tiles draw independent streams via taskSeed.
    const bool single_tile = out.tiles.size() == 1;
    if (tiles_total != nullptr)
        *tiles_total = out.tiles.size();
    std::vector<std::size_t> order(out.tiles.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<YoutiaoDesign> designs = parallelMap(
        order, [&](std::size_t t) {
            const HierarchicalTile &tile = out.tiles[t];
            // Per-tile checkpoint barrier (multi-tile only: a single
            // tile IS the run and gets nothing out of snapshotting
            // itself). A snapshot from a previous interrupted run
            // replays this tile verbatim.
            const std::string ckpt_key = "tile-" + std::to_string(t);
            if (!single_tile && checkpoint::active()) {
                std::vector<std::uint8_t> blob;
                if (checkpoint::fetch(ckpt_key, blob)) {
                    if (tiles_done != nullptr)
                        tiles_done->fetch_add(1,
                                              std::memory_order_relaxed);
                    return unpackTileDesign(blob);
                }
            }
            cancel::poll("hier.tile");
            YoutiaoConfig tile_config = config_;
            tile_config.seed = single_tile
                                   ? config_.seed
                                   : taskSeed(config_.seed, t);

            ChipCharacterization tile_data;
            if (data != nullptr) {
                const std::size_t n = tile.qubits.size();
                tile_data.xyCrosstalk = SymmetricMatrix(n);
                tile_data.zzCrosstalkMHz = SymmetricMatrix(n);
                for (std::size_t i = 0; i < n; ++i) {
                    for (std::size_t j = i; j < n; ++j) {
                        tile_data.xyCrosstalk(i, j) = data->xyCrosstalk(
                            tile.qubits[i], tile.qubits[j]);
                        tile_data.zzCrosstalkMHz(i, j) =
                            data->zzCrosstalkMHz(tile.qubits[i],
                                                 tile.qubits[j]);
                    }
                }
            } else {
                Prng prng(taskSeed(config_.seed, 0xC0FFEE00ull + t));
                tile_data = characterizeChip(tile.chip, prng);
            }

            const YoutiaoDesigner designer(tile_config);
            auto result = designer.designFromMeasurementsRobust(
                tile.chip, tile_data, w_phy);
            if (!result.hasValue()) {
                if (result.error().isCancellation())
                    throw cancel::Cancelled(
                        result.error().code ==
                                DesignErrorCode::DeadlineExceeded
                            ? cancel::Reason::DeadlineExceeded
                            : cancel::Reason::Cancelled,
                        "hier.tile");
                throw ConfigError("tile " + std::to_string(t) +
                                  " design failed: " +
                                  result.error().toString());
            }
            if (!single_tile && checkpoint::active())
                checkpoint::store(ckpt_key,
                                  packTileDesign(result.value()));
            if (tiles_done != nullptr)
                tiles_done->fetch_add(1, std::memory_order_relaxed);
            return std::move(result.value());
        });
    for (std::size_t t = 0; t < out.tiles.size(); ++t)
        out.tiles[t].design = std::move(designs[t]);

    if (single_tile) {
        // Identity maps: the merged design IS the tile design, field for
        // field -- the hierarchy is pure plumbing (tested bit-identical
        // against the flat designer).
        out.merged = out.tiles[0].design;
        metrics::count("hier.tiles_designed", 1);
        return out;
    }

    // Lift and concatenate the tile plans.
    std::vector<TilePlanRefs> refs;
    refs.reserve(out.tiles.size());
    for (const HierarchicalTile &tile : out.tiles) {
        TilePlanRefs ref;
        ref.qubitMap = &tile.qubits;
        ref.couplerMap = &tile.couplers;
        ref.xy = &tile.design.xyPlan;
        ref.frequency = &tile.design.frequencyPlan;
        ref.z = &tile.design.zPlan;
        ref.readoutLines = &tile.design.readoutPlan;
        ref.readout = &tile.design.readout;
        refs.push_back(ref);
    }
    const std::size_t q_count = chip.qubitCount();
    out.merged.xyPlan = mergeFdmPlans(q_count, refs);
    out.merged.frequencyPlan = mergeFrequencyPlans(q_count, refs);
    out.merged.zPlan =
        mergeTdmPlans(q_count, chip.couplerCount(), refs);
    out.merged.readoutPlan = mergeReadoutLines(q_count, refs);
    out.merged.readout = mergeReadoutPlans(q_count, refs);

    // Seam couplers get their own always-realizable groups.
    appendTdmGroups(out.merged.zPlan,
                    packSeamCouplerGroups(chip, out.seamCouplers,
                                          parallelismIndices(chip),
                                          config_.tdm));

    // Merged partition: tile regions concatenated in tile order.
    out.merged.partition.regionOfQubit.assign(q_count, 0);
    for (const HierarchicalTile &tile : out.tiles) {
        const ChipPartition &part = tile.design.partition;
        const std::size_t base = out.merged.partition.regions.size();
        for (const auto &region : part.regions) {
            std::vector<std::size_t> lifted;
            lifted.reserve(region.size());
            for (std::size_t q : region)
                lifted.push_back(tile.qubits[q]);
            out.merged.partition.regions.push_back(std::move(lifted));
        }
        for (std::size_t q = 0; q < tile.qubits.size(); ++q)
            out.merged.partition.regionOfQubit[tile.qubits[q]] =
                base + part.regionOfQubit[q];
        for (std::size_t seed : part.seeds)
            out.merged.partition.seeds.push_back(tile.qubits[seed]);
        out.merged.partition.swapCount += part.swapCount;
    }

    // Aggregate degradation: tile concessions, remapped and prefixed.
    DegradationReport &agg = out.merged.degradation;
    for (std::size_t t = 0; t < out.tiles.size(); ++t) {
        const HierarchicalTile &tile = out.tiles[t];
        const DegradationReport &d = tile.design.degradation;
        for (std::size_t q : d.excludedQubits)
            agg.excludedQubits.push_back(tile.qubits[q]);
        for (std::size_t c : d.excludedCouplers)
            agg.excludedCouplers.push_back(tile.couplers[c]);
        agg.allocationAttempts =
            std::max(agg.allocationAttempts, d.allocationAttempts);
        agg.fdmCapacityUsed =
            std::max(agg.fdmCapacityUsed, d.fdmCapacityUsed);
        agg.demuxFallbackDevices += d.demuxFallbackDevices;
        agg.dedicatedNetFallbacks += d.dedicatedNetFallbacks;
        agg.costDeltaUsd += d.costDeltaUsd;
        for (const std::string &note : d.notes)
            agg.notes.push_back("tile " + std::to_string(t) + ": " +
                                note);
    }
    std::sort(agg.excludedQubits.begin(), agg.excludedQubits.end());
    std::sort(agg.excludedCouplers.begin(), agg.excludedCouplers.end());

    if (data != nullptr) {
        out.merged.predictedXy = data->xyCrosstalk;
        out.merged.predictedZzMHz = data->zzCrosstalkMHz;
    }

    // Boundary-aware frequency stitch across the seams.
    stitchSeamsImpl(chip, data, out);

    agg.residualCrosstalkCost = out.merged.frequencyPlan.crosstalkCost;
    out.merged.counts = multiplexedWiringCounts(
        q_count, out.merged.xyPlan, out.merged.zPlan, config_.cost);
    out.merged.costUsd = wiringCostUsd(out.merged.counts, config_.cost);

    metrics::count("hier.tiles_designed", out.tiles.size());
    metrics::count("hier.seam_couplers", out.seamCouplers.size());
    metrics::count("hier.seam_retunes", out.seamRetunes);
    log::info("hierarchical design finished",
              {{"qubits", chip.qubitCount()},
               {"tiles", out.tiles.size()},
               {"seam_couplers", out.seamCouplers.size()},
               {"seam_retunes", out.seamRetunes},
               {"cost_usd", out.merged.costUsd}});
    return out;
}

void
HierarchicalDesigner::stitchSeamsImpl(const ChipTopology &chip,
                                      const ChipCharacterization *data,
                                      HierarchicalDesign &out) const
{
    const metrics::ScopedTimer timer("hier.seam_stitch");
    const TileMap &map = out.map;
    const double radius =
        hier_.seamRadiusMm > 0.0 ? hier_.seamRadiusMm
                                 : 2.05 * medianCouplerSpanMm(chip);
    out.seamRadiusMmUsed = radius;

    std::vector<double> x_cuts(map.xCutsMm.begin() + 1,
                               map.xCutsMm.end() - 1);
    std::vector<double> y_cuts(map.yCutsMm.begin() + 1,
                               map.yCutsMm.end() - 1);
    if (x_cuts.empty() && y_cuts.empty())
        return;

    // Near-seam qubits, then candidate pairs via a spatial hash. The
    // membership threshold is the full pair radius: a cross-tile pair
    // at most pair_radius apart has both endpoints within pair_radius
    // of the separating cut (|a.x - cut| + |b.x - cut| <= |a.x - b.x|),
    // so this band provably catches every pair the final audit scores.
    const double pair_radius = 2.0 * radius;
    std::vector<std::size_t> near;
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        const Point &p = chip.qubit(q).position;
        bool close = false;
        for (double cut : x_cuts) {
            if (std::abs(p.x - cut) <= pair_radius) {
                close = true;
                break;
            }
        }
        if (!close) {
            for (double cut : y_cuts) {
                if (std::abs(p.y - cut) <= pair_radius) {
                    close = true;
                    break;
                }
            }
        }
        if (close)
            near.push_back(q);
    }
    if (near.empty())
        return;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    for (std::size_t q : near)
        buckets[hashCell(chip.qubit(q).position, pair_radius)].push_back(
            q);

    const CrosstalkGroundTruth truth = xyGroundTruth();
    const Graph &graph = chip.qubitGraph();
    const auto crosstalkOf = [&](std::size_t a, std::size_t b) {
        if (data != nullptr)
            return data->xyCrosstalk(a, b);
        const double d_phy = chip.physicalDistance(a, b);
        const double d_top = localTopologicalDistance(graph, a, b, 4);
        return groundTruthValue(truth, d_phy, d_top);
    };

    std::vector<std::pair<std::size_t, std::size_t>> cross_pairs;
    std::vector<std::vector<SeamNeighbor>> adjacency(chip.qubitCount());
    for (std::size_t a : near) {
        const Point &pa = chip.qubit(a).position;
        const auto cx =
            static_cast<std::int64_t>(std::floor(pa.x / pair_radius));
        const auto cy =
            static_cast<std::int64_t>(std::floor(pa.y / pair_radius));
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
            for (std::int64_t dy = -1; dy <= 1; ++dy) {
                const Point probe{
                    (static_cast<double>(cx + dx) + 0.5) * pair_radius,
                    (static_cast<double>(cy + dy) + 0.5) * pair_radius};
                const auto it = buckets.find(hashCell(probe, pair_radius));
                if (it == buckets.end())
                    continue;
                for (std::size_t b : it->second) {
                    if (b <= a)
                        continue;
                    if (distance(pa, chip.qubit(b).position) >
                        pair_radius)
                        continue;
                    const double xt = crosstalkOf(a, b);
                    adjacency[a].push_back(SeamNeighbor{b, xt});
                    adjacency[b].push_back(SeamNeighbor{a, xt});
                    if (out.tileOfQubit[a] != out.tileOfQubit[b])
                        cross_pairs.emplace_back(a, b);
                }
            }
        }
    }
    std::sort(cross_pairs.begin(), cross_pairs.end());
    out.seamPairsChecked = cross_pairs.size();
    if (cross_pairs.empty())
        return;

    const NoiseModel noise(config_.noise);
    FrequencyPlan &plan = out.merged.frequencyPlan;
    const FrequencyAllocationConfig &fc = config_.frequency;
    const double cell_ghz = fc.cellMHz * units::MHz;

    const auto pairCost = [&](std::size_t a, std::size_t b, double xt) {
        return xt * noise.spectralOverlap(
                        std::abs(plan.frequencyGHz[a] -
                                 plan.frequencyGHz[b]));
    };
    const auto objective = [&](std::size_t q, double f) {
        double sum = 0.0;
        for (const SeamNeighbor &n : adjacency[q])
            sum += n.crosstalk *
                   noise.spectralOverlap(
                       std::abs(f - plan.frequencyGHz[n.other]));
        return sum;
    };

    // Retune sweeps: the offending pair's qubit in the higher-indexed
    // tile scans its own zone for the cell minimizing its local seam
    // objective; odd passes work the lower-tile endpoint instead, so a
    // pair whose first qubit is boxed in by its own neighbours still has
    // a degree of freedom. Deterministic: pairs in ascending order,
    // cells in ascending order, strict improvement required.
    for (std::size_t pass = 0; pass < hier_.maxSeamPasses; ++pass) {
        std::size_t retunes_this_pass = 0;
        for (const auto &[a, b] : cross_pairs) {
            double xt = 0.0;
            for (const SeamNeighbor &n : adjacency[a]) {
                if (n.other == b) {
                    xt = n.crosstalk;
                    break;
                }
            }
            if (pairCost(a, b, xt) <= hier_.seamCrosstalkEpsilon)
                continue;
            const bool pick_high = pass % 2 == 0;
            const std::size_t q =
                (out.tileOfQubit[a] > out.tileOfQubit[b]) == pick_high
                    ? a
                    : b;
            const std::size_t tile = out.tileOfQubit[q];
            const std::size_t zones = std::max<std::size_t>(
                1, out.tiles[tile].design.frequencyPlan.zoneCount);
            const double zone_width =
                (fc.hiGHz - fc.loGHz) / static_cast<double>(zones);
            const auto cells = static_cast<std::size_t>(
                std::floor(zone_width / cell_ghz));
            const std::size_t zone = plan.zoneOfQubit[q];

            double best = objective(q, plan.frequencyGHz[q]);
            double best_f = plan.frequencyGHz[q];
            std::size_t best_cell = plan.cellOfQubit[q];
            bool improved = false;
            for (std::size_t cell = 0; cell < cells; ++cell) {
                const double f =
                    fc.loGHz + static_cast<double>(zone) * zone_width +
                    (static_cast<double>(cell) + 0.5) * cell_ghz;
                if (isMaskedGHz(f, fc.maskedBandsGHz))
                    continue;
                // Keep cells distinct from same-tile, same-zone seam
                // neighbours (the tile allocator placed everyone else).
                bool collides = false;
                for (const SeamNeighbor &n : adjacency[q]) {
                    if (out.tileOfQubit[n.other] == tile &&
                        plan.zoneOfQubit[n.other] == zone &&
                        std::abs(plan.frequencyGHz[n.other] - f) <
                            0.5 * cell_ghz) {
                        collides = true;
                        break;
                    }
                }
                if (collides)
                    continue;
                const double cost = objective(q, f);
                if (cost + 1e-15 < best) {
                    best = cost;
                    best_f = f;
                    best_cell = cell;
                    improved = true;
                }
            }
            if (improved) {
                plan.frequencyGHz[q] = best_f;
                plan.cellOfQubit[q] = best_cell;
                ++retunes_this_pass;
            }
        }
        out.seamRetunes += retunes_this_pass;
        if (retunes_this_pass == 0)
            break;
    }

    // Final audit: the residual cross-seam cost joins the merged
    // objective; anything still above epsilon is a recorded concession.
    double cross_cost = 0.0;
    for (const auto &[a, b] : cross_pairs) {
        double xt = 0.0;
        for (const SeamNeighbor &n : adjacency[a]) {
            if (n.other == b) {
                xt = n.crosstalk;
                break;
            }
        }
        const double cost = pairCost(a, b, xt);
        cross_cost += cost;
        out.maxSeamCrosstalk = std::max(out.maxSeamCrosstalk, cost);
        if (cost > hier_.seamCrosstalkEpsilon)
            ++out.seamViolationsUnresolved;
    }
    plan.crosstalkCost += cross_cost;
    if (out.seamViolationsUnresolved > 0) {
        out.merged.degradation.notes.push_back(
            "seam stitch left " +
            std::to_string(out.seamViolationsUnresolved) +
            " cross-seam pairs above epsilon (worst " +
            std::to_string(out.maxSeamCrosstalk) + ")");
    }
}

ChipRoutingConfig
tunedTileRoutingConfig()
{
    ChipRoutingConfig config;
    config.grid.cellMm = 0.08;
    config.grid.marginMm = 1.0;
    config.astar.heuristicWeight = 2.0;
    return config;
}

bool
HierarchicalRouting::clean() const
{
    if (failedConnections > 0 || corridor.failedNets > 0 ||
        !corridorDrc.clean)
        return false;
    for (const DrcReport &drc : tileDrc) {
        if (!drc.clean)
            return false;
    }
    return true;
}

HierarchicalRouting
routeHierarchical(const ChipTopology &chip,
                  const HierarchicalDesign &design,
                  const HierarchicalRoutingConfig &config)
{
    const metrics::ScopedTimer timer("hier.route");
    const trace::TraceSpan span("hier.route", "hier");
    requireConfig(!design.tiles.empty(),
                  "hierarchical design has no tiles to route");

    HierarchicalRouting out;
    out.lattice =
        makeCorridorLattice(design.map.xCutsMm, design.map.yCutsMm);

    // Budget the per-tile A* arenas up front: a tile whose grid would
    // not fit the bound fails fast with a actionable message instead of
    // thrashing mid-route.
    const double cell = config.tile.grid.cellMm;
    const double margin = config.tile.grid.marginMm;
    for (std::size_t t = 0; t < design.tiles.size(); ++t) {
        const Point box = design.tiles[t].chip.boundingBox();
        const auto w = static_cast<std::size_t>(
            std::ceil((box.x + 2.0 * margin) / cell)) + 1;
        const auto h = static_cast<std::size_t>(
            std::ceil((box.y + 2.0 * margin) / cell)) + 1;
        // One A* state per (cell, direction); g + parent + two stamps.
        const std::size_t bytes =
            w * h * 4 * (sizeof(double) + 3 * sizeof(std::uint32_t));
        out.peakArenaBytes = std::max(out.peakArenaBytes, bytes);
        requireConfig(
            bytes <= config.maxArenaBytes,
            "tile " + std::to_string(t) + " routing arena (" +
                std::to_string(bytes) +
                " bytes) exceeds the budget; use smaller tiles or "
                "coarser routing cells");
    }

    struct TileRoute
    {
        RoutedWiring wiring;
        DrcReport drc;
    };
    std::vector<std::size_t> order(design.tiles.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const bool multi_tile = design.tiles.size() > 1;
    std::vector<TileRoute> routed = parallelMap(
        order, [&](std::size_t t) {
            // Same per-tile barrier as the designer; a restored route
            // carries no grid (the DRC verdict travels in the snapshot
            // instead).
            const std::string ckpt_key = "route-tile-" +
                                         std::to_string(t);
            if (multi_tile && checkpoint::active()) {
                std::vector<std::uint8_t> blob;
                if (checkpoint::fetch(ckpt_key, blob)) {
                    TileRoute route;
                    unpackTileRoute(blob, route.wiring, route.drc);
                    return route;
                }
            }
            cancel::poll("hier.route_tile");
            const HierarchicalTile &tile = design.tiles[t];
            const std::vector<NetSpec> nets = buildWiringNets(
                tile.chip, tile.design.xyPlan, tile.design.zPlan,
                tile.design.readoutPlan, config.tile);
            TileRoute route;
            route.wiring =
                routeChipWithFallback(tile.chip, nets, config.tile);
            const ChipRoutingResult &result = route.wiring.result;
            requireInternal(result.grid.has_value(),
                            "tile routing returned no grid");
            route.drc = checkRoutingDrc(*result.grid, result.netCount,
                                        result.crossovers);
            if (multi_tile && checkpoint::active())
                checkpoint::store(ckpt_key,
                                  packTileRoute(route.wiring,
                                                route.drc));
            return route;
        });

    // Corridor entries: every tile net enters at the lattice segment
    // nearest its perimeter interface pad; every seam TDM group enters
    // from its first endpoint's tile at the group centroid.
    for (std::size_t t = 0; t < design.tiles.size(); ++t) {
        const HierarchicalTile &tile = design.tiles[t];
        const ChipRoutingResult &result = routed[t].wiring.result;
        out.totalNets += result.netCount;
        out.failedConnections += result.failedConnections;
        out.totalLengthMm += result.totalLengthMm;
        for (std::size_t n = 0; n < result.netCount; ++n) {
            const Point iface = n < result.interfaces.size()
                                    ? result.interfaces[n]
                                    : chip.qubit(tile.qubits[0]).position;
            out.corridorEntries.push_back(out.lattice.entrySegmentForTile(
                tile.ix, tile.iy, iface));
        }
    }
    std::size_t tile_groups = 0;
    for (const HierarchicalTile &tile : design.tiles)
        tile_groups += tile.design.zPlan.groups.size();
    const std::size_t q_count = chip.qubitCount();
    for (std::size_t g = tile_groups;
         g < design.merged.zPlan.groups.size(); ++g) {
        const TdmGroup &group = design.merged.zPlan.groups[g];
        requireInternal(!group.devices.empty(), "empty seam TDM group");
        Point centroid{0.0, 0.0};
        for (std::size_t d : group.devices) {
            const Point p = chip.devicePosition(d);
            centroid.x += p.x;
            centroid.y += p.y;
        }
        centroid.x /= static_cast<double>(group.devices.size());
        centroid.y /= static_cast<double>(group.devices.size());
        const std::size_t c = group.devices.front() - q_count;
        const std::size_t home =
            design.tileOfQubit[chip.coupler(c).qubitA];
        out.corridorEntries.push_back(out.lattice.entrySegmentForTile(
            design.tiles[home].ix, design.tiles[home].iy, centroid));
        ++out.totalNets;
    }

    out.corridor =
        routeCorridors(out.lattice, out.corridorEntries, config.corridor);
    out.corridorDrc = checkCorridorDrc(out.lattice, out.corridor,
                                       out.corridorEntries,
                                       config.corridor);
    for (const CorridorPath &path : out.corridor.paths)
        out.totalLengthMm += path.lengthMm;

    out.tiles.reserve(routed.size());
    out.tileDrc.reserve(routed.size());
    for (TileRoute &route : routed) {
        out.tiles.push_back(std::move(route.wiring));
        out.tileDrc.push_back(std::move(route.drc));
    }
    metrics::count("hier.nets_routed", out.totalNets);
    log::info("hierarchical routing finished",
              {{"tiles", design.tiles.size()},
               {"nets", out.totalNets},
               {"failed", out.failedConnections},
               {"corridor_failed", out.corridor.failedNets},
               {"length_mm", out.totalLengthMm}});
    return out;
}

} // namespace youtiao
