/**
 * @file
 * Zero-copy binary design format (magic "YTDSGBIN", schema
 * youtiao-designbin-1; see docs/FILE_FORMATS.md).
 *
 * The text format (serialization.hpp) remains the diff-friendly
 * interchange v0; this is the bulk format for archiving large finished
 * designs. Group lists (XY lines, TDM groups, readout feedlines) are
 * stored CSR-style as an offsets array plus a flattened member array;
 * per-qubit maps and frequencies are plain u64/f64 arrays; the two
 * predicted symmetric matrices are their packed upper triangles. A
 * loaded design passes the exact same validateDesign checks as a
 * text-loaded one and reconstructs bit-identical doubles (payloads are
 * raw IEEE-754, no decimal round-trip).
 *
 * Versioned like the chip binary: readers accept schemas up to
 * kDesignBinVersion, migrating older payloads forward through
 * per-version shims; future versions raise ConfigError.
 */

#ifndef YOUTIAO_CORE_DESIGN_BIN_HPP
#define YOUTIAO_CORE_DESIGN_BIN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/youtiao.hpp"

namespace youtiao {

/** 8-character magic opening every binary design file. */
inline constexpr char kDesignBinMagic[] = "YTDSGBIN";

/** Current binary design schema version (youtiao-designbin-1). */
inline constexpr std::uint32_t kDesignBinVersion = 1;

/** Render @p design as a complete binary file image. */
std::vector<unsigned char> designToBinary(const YoutiaoDesign &design);

/** Write @p design to @p path in the binary format. Throws ConfigError
 *  when the file cannot be written. */
void saveDesignBinary(const std::string &path,
                      const YoutiaoDesign &design);

/** Parse a binary design file image. Throws ConfigError on anything
 *  malformed; the result satisfies validateDesign. The crosstalk-model
 *  objects are left untrained, matching the text loader. */
YoutiaoDesign designFromBinary(const unsigned char *data,
                               std::size_t size);

/** mmap and parse the binary design file at @p path. */
YoutiaoDesign loadDesignBinary(const std::string &path);

} // namespace youtiao

#endif // YOUTIAO_CORE_DESIGN_BIN_HPP
