/**
 * @file
 * Fault-tolerant chip wiring co-design (paper Section 5.2, Figure 11).
 *
 * The surface-code EC cycle has a rigid four-step CZ dance, so its
 * non-parallelism structure is known exactly -- the strongest form of the
 * paper's "natural non-parallel operations":
 *
 *  - the couplers of one stabilizer fire in different dance steps, so
 *    they share one deep cryo-DEMUX for free;
 *  - data qubits pair onto 1:2 DEMUXes when their active-step sets stay
 *    within a small "sacrificed step" budget (steps where one extra CZ
 *    layer per cycle is accepted);
 *  - measure qubits are Z-active in every step and keep dedicated lines
 *    (their parallel X-basis gates ride shared FDM XY lines instead).
 */

#ifndef YOUTIAO_CORE_FAULT_TOLERANT_HPP
#define YOUTIAO_CORE_FAULT_TOLERANT_HPP

#include "chip/surface_code_layout.hpp"
#include "core/config.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/tdm.hpp"

namespace youtiao {

/** YOUTIAO wiring of a surface-code patch. */
struct SurfaceCodeWiring
{
    FdmPlan xyPlan;
    TdmPlan zPlan;
    WiringCounts counts;
    double costUsd = 0.0;
    /** Dance steps accepting one extra CZ layer per cycle. */
    std::size_t sacrificedSteps = 0;
};

/**
 * Design the multiplexed wiring of @p layout. @p overlap_budget bounds
 * how many dance steps may gain an extra layer per EC cycle (the paper's
 * Table 1 shows +1..+2 layers per cycle).
 */
SurfaceCodeWiring designSurfaceCodeWiring(const SurfaceCodeLayout &layout,
                                          const YoutiaoConfig &config = {},
                                          std::size_t overlap_budget = 1);

} // namespace youtiao

#endif // YOUTIAO_CORE_FAULT_TOLERANT_HPP
