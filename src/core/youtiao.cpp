#include "core/youtiao.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "noise/equivalent_distance.hpp"

namespace youtiao {

YoutiaoDesigner::YoutiaoDesigner(YoutiaoConfig config)
    : config_(std::move(config))
{}

YoutiaoDesign
YoutiaoDesigner::design(const ChipTopology &chip,
                        const ChipCharacterization &data) const
{
    CrosstalkModel xy, zz;
    {
        const metrics::ScopedTimer timer("design.characterization_fit");
        const trace::TraceSpan span("design.characterization_fit",
                                    "design");
        xy = CrosstalkModel::fit(data.xySamples, config_.fit);
        zz = CrosstalkModel::fit(data.zzSamples, config_.fit);
    }
    return designWithModels(chip, xy, zz);
}

YoutiaoDesign
YoutiaoDesigner::designWithModels(const ChipTopology &chip,
                                  const CrosstalkModel &xy_model,
                                  const CrosstalkModel &zz_model) const
{
    YoutiaoDesign out;
    out.xyModel = xy_model;
    out.zzModel = zz_model;
    SymmetricMatrix predicted_xy, predicted_zz;
    {
        const metrics::ScopedTimer timer("design.crosstalk_predict");
        const trace::TraceSpan span("design.crosstalk_predict",
                                    "design");
        predicted_xy = xy_model.predictQubitMatrix(chip);
        predicted_zz = zz_model.predictQubitMatrix(chip);
    }
    return finishDesign(chip, std::move(predicted_xy),
                        std::move(predicted_zz), xy_model.wPhy(),
                        std::move(out));
}

YoutiaoDesign
YoutiaoDesigner::designFromMeasurements(const ChipTopology &chip,
                                        const ChipCharacterization &data,
                                        double w_phy) const
{
    requireConfig(data.xyCrosstalk.size() == chip.qubitCount() &&
                      data.zzCrosstalkMHz.size() == chip.qubitCount(),
                  "characterization does not match the chip");
    return finishDesign(chip, data.xyCrosstalk, data.zzCrosstalkMHz,
                        w_phy, YoutiaoDesign{});
}

YoutiaoDesign
YoutiaoDesigner::finishDesign(const ChipTopology &chip,
                              SymmetricMatrix predicted_xy,
                              SymmetricMatrix predicted_zz, double w_phy,
                              YoutiaoDesign out) const
{
    requireConfig(chip.qubitCount() > 0, "cannot design an empty chip");
    out.predictedXy = std::move(predicted_xy);
    out.predictedZzMHz = std::move(predicted_zz);

    // Equivalent-distance matrix under the chosen weights drives both
    // FDM grouping and region growth.
    SymmetricMatrix d_equiv;
    {
        const metrics::ScopedTimer timer("design.distance_matrices");
        const trace::TraceSpan span("design.distance_matrices", "design");
        const SymmetricMatrix d_phy = qubitPhysicalDistanceMatrix(chip);
        const SymmetricMatrix d_top = qubitTopologicalDistanceMatrix(chip);
        d_equiv =
            equivalentDistanceMatrix(d_phy, d_top, w_phy, 1.0 - w_phy);
    }

    Prng prng(config_.seed);
    {
        const metrics::ScopedTimer timer("design.partition");
        const trace::TraceSpan span("design.partition", "design");
        if (chip.qubitCount() > config_.partitionThresholdQubits) {
            out.partition = generativePartition(chip, d_equiv,
                                                config_.partition, prng);
        } else {
            out.partition.regions.push_back({});
            out.partition.regionOfQubit.assign(chip.qubitCount(), 0);
            for (std::size_t q = 0; q < chip.qubitCount(); ++q)
                out.partition.regions[0].push_back(q);
            out.partition.seeds.push_back(0);
        }
    }

    {
        const metrics::ScopedTimer timer("design.xy_grouping");
        const trace::TraceSpan span("design.xy_grouping", "design");
        out.xyPlan =
            groupFdmPartitioned(out.partition, d_equiv, config_.fdm);
    }
    {
        const metrics::ScopedTimer timer("design.frequency_allocation");
        const trace::TraceSpan span("design.frequency_allocation",
                                    "design");
        const NoiseModel noise(config_.noise);
        out.frequencyPlan = allocateFrequencies(
            out.xyPlan, out.predictedXy, noise, config_.frequency);
    }
    {
        const metrics::ScopedTimer timer("design.tdm_grouping");
        const trace::TraceSpan span("design.tdm_grouping", "design");
        out.zPlan = groupTdmPartitioned(chip, out.partition,
                                        out.predictedZzMHz, config_.tdm);
    }

    {
        const metrics::ScopedTimer timer("design.readout_planning");
        const trace::TraceSpan span("design.readout_planning", "design");
        ReadoutConfig readout_cfg = config_.readout;
        readout_cfg.feedlineCapacity = config_.cost.readoutFeedCapacity;
        out.readout = planReadout(d_equiv, readout_cfg);
        out.readoutPlan.lines = out.readout.feedlines;
        out.readoutPlan.lineOfQubit = out.readout.feedlineOfQubit;
    }

    out.counts = multiplexedWiringCounts(chip.qubitCount(), out.xyPlan,
                                         out.zPlan, config_.cost);
    out.costUsd = wiringCostUsd(out.counts, config_.cost);
    metrics::count("design.chips_designed");
    metrics::count("design.qubits_designed", chip.qubitCount());
    log::info("chip designed",
              {{"qubits", chip.qubitCount()},
               {"regions", out.partition.regions.size()},
               {"xy_lines", out.xyPlan.lines.size()},
               {"z_groups", out.zPlan.groups.size()},
               {"cost_usd", out.costUsd}});
    return out;
}

FidelityContext
YoutiaoDesigner::makeFidelityContext(const ChipTopology &chip,
                                     const YoutiaoDesign &design) const
{
    FidelityContext ctx;
    ctx.noise = NoiseModel(config_.noise);
    ctx.xyCoupling = design.predictedXy;
    ctx.zzMHz = design.predictedZzMHz;
    ctx.frequencyGHz = design.frequencyPlan.frequencyGHz;
    ctx.fdmLineOfQubit = design.xyPlan.lineOfQubit;
    ctx.t1Ns.reserve(chip.qubitCount());
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        ctx.t1Ns.push_back(chip.qubit(q).t1Ns);
    return ctx;
}

} // namespace youtiao
