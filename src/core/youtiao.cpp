#include "core/youtiao.hpp"

#include <algorithm>
#include <sstream>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "noise/equivalent_distance.hpp"

namespace youtiao {

namespace {

/** A cooperative abort surfaced as a structured error: which reason,
 *  and which poll site observed it. */
DesignError
cancelledError(const cancel::Cancelled &e)
{
    const DesignErrorCode code =
        e.reason() == cancel::Reason::DeadlineExceeded
            ? DesignErrorCode::DeadlineExceeded
            : DesignErrorCode::Cancelled;
    return DesignError(DesignStage::Validation, e.what(), code)
        .with("where", e.where());
}

} // namespace

bool
DegradationReport::empty() const
{
    return excludedQubits.empty() && excludedCouplers.empty() &&
           allocationAttempts <= 1 && fdmCapacityUsed == 0 &&
           demuxFallbackDevices == 0 && dedicatedNetFallbacks == 0 &&
           notes.empty();
}

std::string
DegradationReport::summary() const
{
    std::ostringstream out;
    out << "-- degradation --\n";
    auto list = [&out](const char *label,
                       const std::vector<std::size_t> &ids) {
        out << label << ids.size();
        if (!ids.empty()) {
            out << " (";
            for (std::size_t i = 0; i < ids.size(); ++i)
                out << (i > 0 ? " " : "") << ids[i];
            out << ")";
        }
        out << '\n';
    };
    list("excluded qubits        ", excludedQubits);
    list("excluded couplers      ", excludedCouplers);
    out << "allocation attempts    " << allocationAttempts << '\n';
    if (fdmCapacityUsed > 0)
        out << "fdm capacity used      " << fdmCapacityUsed << '\n';
    out << "demux fallback devices " << demuxFallbackDevices << '\n'
        << "dedicated net fallbacks " << dedicatedNetFallbacks << '\n';
    {
        std::ostringstream cost;
        cost.precision(2);
        cost << std::fixed << costDeltaUsd;
        out << "cost delta             " << (costDeltaUsd >= 0.0 ? "+" : "")
            << cost.str() << " USD\n";
    }
    for (const std::string &note : notes)
        out << "  - " << note << '\n';
    return out.str();
}

YoutiaoDesigner::YoutiaoDesigner(YoutiaoConfig config)
    : config_(std::move(config))
{}

YoutiaoDesign
YoutiaoDesigner::design(const ChipTopology &chip,
                        const ChipCharacterization &data) const
{
    CrosstalkModel xy, zz;
    {
        const metrics::ScopedTimer timer("design.characterization_fit");
        const trace::TraceSpan span("design.characterization_fit",
                                    "design");
        xy = CrosstalkModel::fit(data.xySamples, config_.fit);
        zz = CrosstalkModel::fit(data.zzSamples, config_.fit);
    }
    return designWithModels(chip, xy, zz);
}

YoutiaoDesign
YoutiaoDesigner::designWithModels(const ChipTopology &chip,
                                  const CrosstalkModel &xy_model,
                                  const CrosstalkModel &zz_model) const
{
    YoutiaoDesign out;
    out.xyModel = xy_model;
    out.zzModel = zz_model;
    SymmetricMatrix predicted_xy, predicted_zz;
    {
        const metrics::ScopedTimer timer("design.crosstalk_predict");
        const trace::TraceSpan span("design.crosstalk_predict",
                                    "design");
        predicted_xy = xy_model.predictQubitMatrix(chip);
        predicted_zz = zz_model.predictQubitMatrix(chip);
    }
    return finishDesign(chip, std::move(predicted_xy),
                        std::move(predicted_zz), xy_model.wPhy(),
                        std::move(out));
}

YoutiaoDesign
YoutiaoDesigner::designFromMeasurements(const ChipTopology &chip,
                                        const ChipCharacterization &data,
                                        double w_phy) const
{
    requireConfig(data.xyCrosstalk.size() == chip.qubitCount() &&
                      data.zzCrosstalkMHz.size() == chip.qubitCount(),
                  "characterization does not match the chip");
    return finishDesign(chip, data.xyCrosstalk, data.zzCrosstalkMHz,
                        w_phy, YoutiaoDesign{});
}

YoutiaoDesign
YoutiaoDesigner::finishDesign(const ChipTopology &chip,
                              SymmetricMatrix predicted_xy,
                              SymmetricMatrix predicted_zz, double w_phy,
                              YoutiaoDesign out) const
{
    requireConfig(chip.qubitCount() > 0, "cannot design an empty chip");
    cancel::poll("design.start");
    out.predictedXy = std::move(predicted_xy);
    out.predictedZzMHz = std::move(predicted_zz);

    // Equivalent-distance matrix under the chosen weights drives both
    // FDM grouping and region growth.
    SymmetricMatrix d_equiv;
    {
        const metrics::ScopedTimer timer("design.distance_matrices");
        const trace::TraceSpan span("design.distance_matrices", "design");
        const SymmetricMatrix d_phy = qubitPhysicalDistanceMatrix(chip);
        const SymmetricMatrix d_top = qubitTopologicalDistanceMatrix(chip);
        d_equiv =
            equivalentDistanceMatrix(d_phy, d_top, w_phy, 1.0 - w_phy);
    }

    Prng prng(config_.seed);
    cancel::poll("design.partition");
    {
        const metrics::ScopedTimer timer("design.partition");
        const trace::TraceSpan span("design.partition", "design");
        if (chip.qubitCount() > config_.partitionThresholdQubits) {
            out.partition = generativePartition(chip, d_equiv,
                                                config_.partition, prng);
        } else {
            out.partition.regions.push_back({});
            out.partition.regionOfQubit.assign(chip.qubitCount(), 0);
            for (std::size_t q = 0; q < chip.qubitCount(); ++q)
                out.partition.regions[0].push_back(q);
            out.partition.seeds.push_back(0);
        }
    }

    cancel::poll("design.allocate");
    {
        const metrics::ScopedTimer timer("design.xy_grouping");
        const trace::TraceSpan span("design.xy_grouping", "design");
        out.xyPlan =
            groupFdmPartitioned(out.partition, d_equiv, config_.fdm);
    }
    {
        const metrics::ScopedTimer timer("design.frequency_allocation");
        const trace::TraceSpan span("design.frequency_allocation",
                                    "design");
        const NoiseModel noise(config_.noise);
        out.frequencyPlan = allocateFrequencies(
            out.xyPlan, out.predictedXy, noise, config_.frequency);
    }
    cancel::poll("design.tdm");
    {
        const metrics::ScopedTimer timer("design.tdm_grouping");
        const trace::TraceSpan span("design.tdm_grouping", "design");
        out.zPlan = groupTdmPartitioned(chip, out.partition,
                                        out.predictedZzMHz, config_.tdm);
    }

    cancel::poll("design.readout");
    {
        const metrics::ScopedTimer timer("design.readout_planning");
        const trace::TraceSpan span("design.readout_planning", "design");
        ReadoutConfig readout_cfg = config_.readout;
        readout_cfg.feedlineCapacity = config_.cost.readoutFeedCapacity;
        out.readout = planReadout(d_equiv, readout_cfg);
        out.readoutPlan.lines = out.readout.feedlines;
        out.readoutPlan.lineOfQubit = out.readout.feedlineOfQubit;
    }

    out.counts = multiplexedWiringCounts(chip.qubitCount(), out.xyPlan,
                                         out.zPlan, config_.cost);
    out.costUsd = wiringCostUsd(out.counts, config_.cost);
    metrics::count("design.chips_designed");
    metrics::count("design.qubits_designed", chip.qubitCount());
    log::info("chip designed",
              {{"qubits", chip.qubitCount()},
               {"regions", out.partition.regions.size()},
               {"xy_lines", out.xyPlan.lines.size()},
               {"z_groups", out.zPlan.groups.size()},
               {"cost_usd", out.costUsd}});
    return out;
}

Expected<YoutiaoDesign, DesignError>
YoutiaoDesigner::designRobust(const ChipTopology &chip,
                              const ChipCharacterization &data) const
{
    CrosstalkModel xy, zz;
    try {
        const metrics::ScopedTimer timer("design.characterization_fit");
        const trace::TraceSpan span("design.characterization_fit",
                                    "design");
        xy = CrosstalkModel::fit(data.xySamples, config_.fit);
        zz = CrosstalkModel::fit(data.zzSamples, config_.fit);
    } catch (const cancel::Cancelled &e) {
        return cancelledError(e);
    } catch (const std::exception &e) {
        return DesignError(DesignStage::ModelFit, e.what());
    }
    return designWithModelsRobust(chip, xy, zz);
}

Expected<YoutiaoDesign, DesignError>
YoutiaoDesigner::designWithModelsRobust(const ChipTopology &chip,
                                        const CrosstalkModel &xy_model,
                                        const CrosstalkModel &zz_model)
    const
{
    YoutiaoDesign out;
    out.xyModel = xy_model;
    out.zzModel = zz_model;
    SymmetricMatrix predicted_xy, predicted_zz;
    try {
        const metrics::ScopedTimer timer("design.crosstalk_predict");
        const trace::TraceSpan span("design.crosstalk_predict",
                                    "design");
        predicted_xy = xy_model.predictQubitMatrix(chip);
        predicted_zz = zz_model.predictQubitMatrix(chip);
    } catch (const cancel::Cancelled &e) {
        return cancelledError(e);
    } catch (const std::exception &e) {
        return DesignError(DesignStage::ModelFit,
                           std::string("prediction failed: ") + e.what());
    }
    try {
        return finishDesignRobust(chip, std::move(predicted_xy),
                                  std::move(predicted_zz),
                                  xy_model.wPhy(), std::move(out));
    } catch (const cancel::Cancelled &e) {
        return cancelledError(e);
    }
}

Expected<YoutiaoDesign, DesignError>
YoutiaoDesigner::designFromMeasurementsRobust(
    const ChipTopology &chip, const ChipCharacterization &data,
    double w_phy) const
{
    if (data.xyCrosstalk.size() != chip.qubitCount() ||
        data.zzCrosstalkMHz.size() != chip.qubitCount()) {
        return DesignError(DesignStage::Validation,
                           "characterization does not match the chip")
            .with("qubits", chip.qubitCount())
            .with("xy_rows", data.xyCrosstalk.size())
            .with("zz_rows", data.zzCrosstalkMHz.size());
    }
    try {
        return finishDesignRobust(chip, data.xyCrosstalk,
                                  data.zzCrosstalkMHz, w_phy,
                                  YoutiaoDesign{});
    } catch (const cancel::Cancelled &e) {
        return cancelledError(e);
    }
}

Expected<YoutiaoDesign, DesignError>
YoutiaoDesigner::finishDesignRobust(const ChipTopology &chip,
                                    SymmetricMatrix predicted_xy,
                                    SymmetricMatrix predicted_zz,
                                    double w_phy, YoutiaoDesign out) const
{
    // The clean path below runs the exact stage sequence of
    // finishDesign() -- same calls, same PRNG consumption -- so a run
    // where no ladder step engages is bit-identical to the throwing
    // entry points (pinned by tests/test_degradation.cpp).
    if (chip.qubitCount() == 0)
        return DesignError(DesignStage::Validation,
                           "cannot design an empty chip");
    cancel::poll("design.start");
    out.predictedXy = std::move(predicted_xy);
    out.predictedZzMHz = std::move(predicted_zz);
    DegradationReport &degraded = out.degradation;

    SymmetricMatrix d_equiv;
    try {
        const metrics::ScopedTimer timer("design.distance_matrices");
        const trace::TraceSpan span("design.distance_matrices", "design");
        const SymmetricMatrix d_phy = qubitPhysicalDistanceMatrix(chip);
        const SymmetricMatrix d_top = qubitTopologicalDistanceMatrix(chip);
        d_equiv =
            equivalentDistanceMatrix(d_phy, d_top, w_phy, 1.0 - w_phy);
    } catch (const cancel::Cancelled &) {
        throw;
    } catch (const std::exception &e) {
        return DesignError(DesignStage::Validation, e.what());
    }

    cancel::poll("design.partition");
    Prng prng(config_.seed);
    {
        const metrics::ScopedTimer timer("design.partition");
        const trace::TraceSpan span("design.partition", "design");
        bool single_region =
            chip.qubitCount() <= config_.partitionThresholdQubits;
        if (!single_region) {
            if (fault::site("design.partition")) {
                degraded.notes.push_back(
                    "partition stage failed (injected); using a single "
                    "region");
                single_region = true;
            } else {
                try {
                    out.partition = generativePartition(
                        chip, d_equiv, config_.partition, prng);
                } catch (const cancel::Cancelled &) {
                    throw;
                } catch (const std::exception &e) {
                    degraded.notes.push_back(
                        std::string("partition failed (") + e.what() +
                        "); using a single region");
                    single_region = true;
                }
            }
        }
        if (single_region) {
            out.partition = ChipPartition{};
            out.partition.regions.push_back({});
            out.partition.regionOfQubit.assign(chip.qubitCount(), 0);
            for (std::size_t q = 0; q < chip.qubitCount(); ++q)
                out.partition.regions[0].push_back(q);
            out.partition.seeds.push_back(0);
        }
    }

    // Grouping + allocation ladder: every attempt re-groups the XY
    // lines and re-allocates the spectrum. Retries shrink the line
    // capacity by one (fewer, wider frequency zones -- the knob that
    // rescues masked bands and crowding) and jitter the distance matrix
    // with a seeded perturbation so the greedy grouping explores a
    // different tiling.
    const std::size_t budget =
        std::max<std::size_t>(1, config_.robustness.maxAllocationAttempts);
    const std::size_t configured_capacity =
        std::max<std::size_t>(1, config_.fdm.lineCapacity);
    std::size_t capacity = configured_capacity;
    Prng retry_prng(taskSeed(config_.seed, 0x0DE6'7ADEull));
    FdmPlan ideal_xy;
    bool have_ideal_xy = false;
    std::string last_failure;
    bool allocated = false;
    for (std::size_t attempt = 0; attempt < budget && !allocated;
         ++attempt) {
        cancel::poll("design.allocate");
        FdmGroupingConfig fdm_cfg = config_.fdm;
        fdm_cfg.lineCapacity = capacity;
        try {
            {
                const metrics::ScopedTimer timer("design.xy_grouping");
                const trace::TraceSpan span("design.xy_grouping",
                                            "design");
                if (fault::site("design.fdm_group"))
                    throw ConfigError(
                        "injected fault: XY grouping failed");
                if (attempt == 0) {
                    out.xyPlan = groupFdmPartitioned(out.partition,
                                                     d_equiv, fdm_cfg);
                } else {
                    SymmetricMatrix jittered = d_equiv;
                    const double eps = config_.robustness.retryJitter;
                    for (std::size_t i = 0; i < jittered.size(); ++i)
                        for (std::size_t j = i + 1; j < jittered.size();
                             ++j)
                            jittered(i, j) *=
                                1.0 + eps * retry_prng.uniform();
                    out.xyPlan = groupFdmPartitioned(out.partition,
                                                     jittered, fdm_cfg);
                }
            }
            {
                const metrics::ScopedTimer timer(
                    "design.frequency_allocation");
                const trace::TraceSpan span(
                    "design.frequency_allocation", "design");
                if (fault::site("freq.allocate"))
                    throw ConfigError("injected fault: frequency "
                                      "allocation infeasible");
                const NoiseModel noise(config_.noise);
                out.frequencyPlan = allocateFrequencies(
                    out.xyPlan, out.predictedXy, noise,
                    config_.frequency);
            }
            allocated = true;
            if (!have_ideal_xy) {
                ideal_xy = out.xyPlan;
                have_ideal_xy = true;
            }
            if (attempt > 0) {
                degraded.allocationAttempts = attempt + 1;
                degraded.fdmCapacityUsed = capacity;
                degraded.notes.push_back(
                    "allocation succeeded on attempt " +
                    std::to_string(attempt + 1) + " with line capacity " +
                    std::to_string(capacity) + " (configured " +
                    std::to_string(configured_capacity) + ")");
            }
        } catch (const cancel::Cancelled &) {
            throw;
        } catch (const std::exception &e) {
            last_failure = e.what();
            metrics::count("design.allocation_retries");
            trace::instant("design.allocation_retry", "design");
            degraded.notes.push_back(
                "allocation attempt " + std::to_string(attempt + 1) +
                " at capacity " + std::to_string(capacity) +
                " failed: " + last_failure);
            // The first attempt's grouping is the undegraded resource
            // estimate even when its allocation failed.
            if (attempt == 0 && !out.xyPlan.lines.empty() &&
                !have_ideal_xy) {
                ideal_xy = out.xyPlan;
                have_ideal_xy = true;
            }
            if (capacity > 1)
                --capacity;
        }
    }
    if (!allocated) {
        return DesignError(DesignStage::FrequencyAllocation,
                           "allocation budget exhausted: " + last_failure)
            .with("attempts", budget)
            .with("final_capacity", capacity);
    }

    cancel::poll("design.tdm");
    {
        const metrics::ScopedTimer timer("design.tdm_grouping");
        const trace::TraceSpan span("design.tdm_grouping", "design");
        bool dedicated_fallback = false;
        if (fault::site("design.tdm_group")) {
            degraded.notes.push_back(
                "TDM grouping failed (injected); dedicated Z lines");
            dedicated_fallback = true;
        } else {
            try {
                out.zPlan = groupTdmPartitioned(chip, out.partition,
                                                out.predictedZzMHz,
                                                config_.tdm);
            } catch (const cancel::Cancelled &) {
                throw;
            } catch (const std::exception &e) {
                degraded.notes.push_back(
                    std::string("TDM grouping failed (") + e.what() +
                    "); dedicated Z lines");
                dedicated_fallback = true;
            }
        }
        if (dedicated_fallback)
            out.zPlan = dedicatedZPlan(chip);
    }
    FdmPlan ideal_xy_for_counts = have_ideal_xy ? ideal_xy : out.xyPlan;
    const TdmPlan ideal_z = out.zPlan;

    // Broken DEMUX output channels strand their device: move it to a
    // dedicated Z line. Moving a device out of a group can never break
    // gate realizability (no new group sharing is created).
    if (fault::enabled()) {
        const std::size_t original_groups = out.zPlan.groups.size();
        for (std::size_t g = 0; g < original_groups; ++g) {
            if (out.zPlan.groups[g].fanout <= 1)
                continue;
            std::vector<std::size_t> kept, moved;
            for (std::size_t d : out.zPlan.groups[g].devices) {
                if (fault::site("tdm.demux_channel"))
                    moved.push_back(d);
                else
                    kept.push_back(d);
            }
            if (moved.empty())
                continue;
            if (kept.empty()) {
                // The whole DEMUX died: its group becomes the first
                // device's dedicated line instead of going empty.
                out.zPlan.groups[g].devices = {moved.front()};
                out.zPlan.groups[g].fanout = 1;
                moved.erase(moved.begin());
            } else {
                out.zPlan.groups[g].devices = std::move(kept);
            }
            degraded.demuxFallbackDevices += moved.size() +
                (out.zPlan.groups[g].fanout == 1 ? 1 : 0);
            for (std::size_t d : moved) {
                out.zPlan.groupOfDevice[d] = out.zPlan.groups.size();
                out.zPlan.groups.push_back(TdmGroup{{d}, 1});
            }
            degraded.notes.push_back(
                "demux group " + std::to_string(g) + " lost " +
                std::to_string(moved.size() +
                               (out.zPlan.groups[g].fanout == 1 ? 1 : 0)) +
                " channel(s); device(s) moved to dedicated Z lines");
        }
    }

    cancel::poll("design.readout");
    {
        const metrics::ScopedTimer timer("design.readout_planning");
        const trace::TraceSpan span("design.readout_planning", "design");
        ReadoutConfig readout_cfg = config_.readout;
        readout_cfg.feedlineCapacity = config_.cost.readoutFeedCapacity;
        bool dedicated_readout = false;
        if (fault::site("design.readout")) {
            degraded.notes.push_back(
                "readout planning failed (injected); dedicated "
                "feedlines");
            dedicated_readout = true;
        } else {
            try {
                out.readout = planReadout(d_equiv, readout_cfg);
            } catch (const cancel::Cancelled &) {
                throw;
            } catch (const std::exception &e) {
                degraded.notes.push_back(
                    std::string("readout planning failed (") + e.what() +
                    "); dedicated feedlines");
                dedicated_readout = true;
            }
        }
        if (dedicated_readout) {
            readout_cfg.feedlineCapacity = 1;
            out.readout = planReadout(d_equiv, readout_cfg);
        }
        out.readoutPlan.lines = out.readout.feedlines;
        out.readoutPlan.lineOfQubit = out.readout.feedlineOfQubit;
    }

    out.counts = multiplexedWiringCounts(chip.qubitCount(), out.xyPlan,
                                         out.zPlan, config_.cost);
    out.costUsd = wiringCostUsd(out.counts, config_.cost);
    degraded.residualCrosstalkCost = out.frequencyPlan.crosstalkCost;
    if (!degraded.empty()) {
        const WiringCounts ideal_counts = multiplexedWiringCounts(
            chip.qubitCount(), ideal_xy_for_counts, ideal_z,
            config_.cost);
        degraded.costDeltaUsd =
            out.costUsd - wiringCostUsd(ideal_counts, config_.cost);
        metrics::count("design.degraded_designs");
        log::warn("design degraded",
                  {{"notes", degraded.notes.size()},
                   {"attempts", degraded.allocationAttempts},
                   {"demux_fallbacks", degraded.demuxFallbackDevices},
                   {"cost_delta_usd", degraded.costDeltaUsd}});
    }
    metrics::count("design.chips_designed");
    metrics::count("design.qubits_designed", chip.qubitCount());
    log::info("chip designed",
              {{"qubits", chip.qubitCount()},
               {"regions", out.partition.regions.size()},
               {"xy_lines", out.xyPlan.lines.size()},
               {"z_groups", out.zPlan.groups.size()},
               {"cost_usd", out.costUsd}});
    return out;
}

FidelityContext
YoutiaoDesigner::makeFidelityContext(const ChipTopology &chip,
                                     const YoutiaoDesign &design) const
{
    FidelityContext ctx;
    ctx.noise = NoiseModel(config_.noise);
    ctx.xyCoupling = design.predictedXy;
    ctx.zzMHz = design.predictedZzMHz;
    ctx.frequencyGHz = design.frequencyPlan.frequencyGHz;
    ctx.fdmLineOfQubit = design.xyPlan.lineOfQubit;
    ctx.t1Ns.reserve(chip.qubitCount());
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        ctx.t1Ns.push_back(chip.qubit(q).t1Ns);
    return ctx;
}

} // namespace youtiao
