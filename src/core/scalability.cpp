#include "core/scalability.hpp"

#include <cmath>

#include "common/error.hpp"
#include "cost/cost_model.hpp"
#include "multiplex/parallelism_index.hpp"

namespace youtiao {

ChipTopology
makeGridWithQubitCount(std::size_t qubits, const BuilderOptions &opts)
{
    requireConfig(qubits >= 1, "need at least one qubit");
    const auto rows = static_cast<std::size_t>(
        std::floor(std::sqrt(static_cast<double>(qubits))));
    const std::size_t cols = (qubits + rows - 1) / rows;

    ChipTopology chip("square grid ~" + std::to_string(qubits));
    for (std::size_t q = 0; q < qubits; ++q) {
        const std::size_t r = q / cols;
        const std::size_t c = q % cols;
        QubitInfo info;
        info.position = Point{static_cast<double>(c) * opts.pitchMm,
                              static_cast<double>(r) * opts.pitchMm};
        info.t1Ns = opts.t1Ns;
        chip.addQubit(info);
    }
    for (std::size_t q = 0; q < qubits; ++q) {
        const std::size_t r = q / cols;
        const std::size_t c = q % cols;
        if (c + 1 < cols && q + 1 < qubits && (q + 1) / cols == r)
            chip.addCoupler(q, q + 1);
        if (q + cols < qubits)
            chip.addCoupler(q, q + cols);
    }
    Prng prng(opts.seed);
    assignPatternFrequencies(chip, prng);
    return chip;
}

ScalePoint
estimateSquareSystem(std::size_t qubits, const YoutiaoConfig &config)
{
    const ChipTopology chip = makeGridWithQubitCount(qubits);
    ScalePoint point;
    point.qubits = chip.qubitCount();
    point.couplers = chip.couplerCount();

    const std::vector<double> index = parallelismIndices(chip);
    for (double i : index) {
        if (i >= config.tdm.parallelismThreshold)
            ++point.highParallelismDevices;
    }

    const WiringCounts google = dedicatedWiringCounts(
        point.qubits, point.couplers, config.cost);
    const WiringCounts ours = multiplexedWiringCountsAnalytic(
        point.qubits, point.couplers, config.fdm.lineCapacity,
        point.highParallelismDevices, config.cost);
    point.googleCoax = google.coax();
    point.youtiaoCoax = ours.coax();
    point.googleCostUsd = wiringCostUsd(google, config.cost);
    point.youtiaoCostUsd = wiringCostUsd(ours, config.cost);
    return point;
}

std::vector<ScalePoint>
sweepSquareSystems(const std::vector<std::size_t> &sizes,
                   const YoutiaoConfig &config)
{
    std::vector<ScalePoint> points;
    points.reserve(sizes.size());
    for (std::size_t n : sizes)
        points.push_back(estimateSquareSystem(n, config));
    return points;
}

ChipletComparison
compareIbmChiplet(std::size_t copies, const YoutiaoConfig &config)
{
    requireConfig(copies >= 1, "need at least one chiplet");
    // A 4x5-cell heavy honeycomb: 135 qubits, the closest heavy-hex
    // tiling to IBM's 133-qubit chips.
    const ChipTopology chiplet =
        makeHeavy(makeHexagon(4, 5), BuilderOptions{});

    ChipletComparison cmp;
    cmp.copies = copies;
    cmp.qubitsPerChiplet = chiplet.qubitCount();
    cmp.totalQubits = copies * chiplet.qubitCount();

    std::size_t high = 0;
    for (double i : parallelismIndices(chiplet)) {
        if (i >= config.tdm.parallelismThreshold)
            ++high;
    }
    const WiringCounts ibm = dedicatedWiringCounts(
        chiplet.qubitCount(), chiplet.couplerCount(), config.cost);
    const WiringCounts ours = multiplexedWiringCountsAnalytic(
        chiplet.qubitCount(), chiplet.couplerCount(),
        config.fdm.lineCapacity, high, config.cost);
    cmp.ibmCoax = copies * ibm.coax();
    cmp.youtiaoCoax = copies * ours.coax();
    return cmp;
}

HierarchicalCrossCheck
crossCheckHierarchicalCounts(const ChipTopology &chip,
                             const HierarchicalDesign &design,
                             const YoutiaoConfig &config, double band_lo,
                             double band_hi)
{
    requireConfig(band_lo > 0.0 && band_lo < band_hi,
                  "cross-check band must be a positive interval");
    std::size_t high = 0;
    for (double i : parallelismIndices(chip)) {
        if (i >= config.tdm.parallelismThreshold)
            ++high;
    }
    const WiringCounts analytic = multiplexedWiringCountsAnalytic(
        chip.qubitCount(), chip.couplerCount(), config.fdm.lineCapacity,
        high, config.cost);

    HierarchicalCrossCheck check;
    check.actualCoax = design.merged.counts.coax();
    check.analyticCoax = analytic.coax();
    check.bandLo = band_lo;
    check.bandHi = band_hi;
    check.ratio = check.analyticCoax == 0
                      ? 0.0
                      : static_cast<double>(check.actualCoax) /
                            static_cast<double>(check.analyticCoax);
    check.withinBand =
        check.ratio >= band_lo && check.ratio <= band_hi;
    return check;
}

} // namespace youtiao
