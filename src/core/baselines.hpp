/**
 * @file
 * Comparator wiring systems from the paper's evaluation:
 *
 *  - Google Sycamore-style dedicated wiring [36]: one XY and one Z line
 *    per qubit, one Z per coupler, readout-only multiplexing;
 *  - George et al. [13]: FDM with in-line-only frequency allocation on
 *    locally clustered groups;
 *  - Acharya et al. [2]: TDM via cryo-DEMUX with legal local clustering;
 *  - IBM chiplet scale-out [35]: dedicated-wiring heavy-hex chiplets.
 */

#ifndef YOUTIAO_CORE_BASELINES_HPP
#define YOUTIAO_CORE_BASELINES_HPP

#include "chip/topology.hpp"
#include "core/config.hpp"
#include "multiplex/frequency_allocation.hpp"
#include "sim/fidelity_estimator.hpp"

namespace youtiao {

/** A baseline's wiring outcome (same shape as YOUTIAO's for comparison). */
struct BaselineDesign
{
    FdmPlan xyPlan;
    FrequencyPlan frequencyPlan;
    TdmPlan zPlan;
    FdmPlan readoutPlan;
    WiringCounts counts;
    double costUsd = 0.0;
};

/**
 * Google-style dedicated wiring: one XY line per qubit, dedicated Z lines,
 * readout FDM only. With @p measured_xy (a calibrated crosstalk matrix)
 * the idle frequencies are tuned crosstalk-aware, modelling
 * frequency-aware calibration (Ding et al., MICRO'20); otherwise
 * fabrication values are kept.
 */
BaselineDesign designGoogleWiring(const ChipTopology &chip,
                                  const YoutiaoConfig &config = {},
                                  const SymmetricMatrix *measured_xy
                                  = nullptr);

/**
 * George et al. FDM: local-cluster groups at @p config.fdm.lineCapacity
 * with optimal in-line frequency spread but no inter-line coordination.
 * Z plane stays dedicated (their work multiplexes RF lines only).
 */
BaselineDesign designGeorgeFdm(const ChipTopology &chip,
                               const YoutiaoConfig &config = {});

/**
 * Unoptimized FDM: local-cluster groups keeping fabrication frequencies
 * (the paper's worst-case baseline in Figure 13).
 */
BaselineDesign designUnoptimizedFdm(const ChipTopology &chip,
                                    const YoutiaoConfig &config = {});

/**
 * Acharya et al. TDM: all Z devices behind 1:4 cryo-DEMUXes grouped by
 * legal local clustering; XY/readout as Google.
 */
BaselineDesign designAcharyaTdm(const ChipTopology &chip,
                                const YoutiaoConfig &config = {},
                                const SymmetricMatrix *measured_xy
                                = nullptr);

/**
 * Fidelity context for a baseline design on @p chip, using the true
 * characterization matrices @p xy / @p zz.
 */
FidelityContext makeBaselineFidelityContext(const ChipTopology &chip,
                                            const BaselineDesign &design,
                                            const SymmetricMatrix &xy,
                                            const SymmetricMatrix &zz,
                                            const YoutiaoConfig &config
                                            = {});

} // namespace youtiao

#endif // YOUTIAO_CORE_BASELINES_HPP
