/**
 * @file
 * Top-level configuration aggregating every subsystem's knobs.
 */

#ifndef YOUTIAO_CORE_CONFIG_HPP
#define YOUTIAO_CORE_CONFIG_HPP

#include <cstdint>

#include "cost/cost_model.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/frequency_allocation.hpp"
#include "multiplex/readout.hpp"
#include "multiplex/tdm.hpp"
#include "noise/crosstalk_model.hpp"
#include "noise/noise_model.hpp"
#include "partition/generative_partition.hpp"

namespace youtiao {

/** End-to-end designer configuration (paper defaults). */
struct YoutiaoConfig
{
    /** Crosstalk-model fitting (Section 4.1). */
    CrosstalkFitConfig fit;
    /** FDM XY grouping (Section 4.2); capacity 5 as in Tables 1-2. */
    FdmGroupingConfig fdm;
    /** Two-level frequency allocation (Section 4.2). */
    FrequencyAllocationConfig frequency;
    /** TDM Z grouping (Section 4.3). */
    TdmGroupingConfig tdm;
    /** Readout-plane multiplexing (Section 2.2). */
    ReadoutConfig readout;
    /** Generative chip partition (Section 4.4). */
    PartitionConfig partition;
    /** Error-rate physics. */
    NoiseModelConfig noise;
    /** Unit prices / readout capacities. */
    CostModelConfig cost;
    /** Chips at or below this qubit count skip partitioning. */
    std::size_t partitionThresholdQubits = 24;
    /** Master seed for all stochastic stages. */
    std::uint64_t seed = 0x59544AF0;
};

} // namespace youtiao

#endif // YOUTIAO_CORE_CONFIG_HPP
