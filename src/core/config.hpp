/**
 * @file
 * Top-level configuration aggregating every subsystem's knobs.
 */

#ifndef YOUTIAO_CORE_CONFIG_HPP
#define YOUTIAO_CORE_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "cost/cost_model.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/frequency_allocation.hpp"
#include "multiplex/readout.hpp"
#include "multiplex/tdm.hpp"
#include "noise/crosstalk_model.hpp"
#include "noise/noise_model.hpp"
#include "partition/generative_partition.hpp"

namespace youtiao {

/** Graceful-degradation knobs for the robust design path (DESIGN.md
 *  §9): how hard the ladder tries before returning a DesignError. */
struct RobustnessConfig
{
    /**
     * Grouping + frequency-allocation attempts before giving up
     * (>= 1). Each retry shrinks the FDM line capacity by one (fewer,
     * wider frequency zones) and perturbs the grouping with seeded
     * jitter, so a masked band or injected infeasibility costs lines
     * instead of the whole design.
     */
    std::size_t maxAllocationAttempts = 4;
    /** Relative equivalent-distance jitter applied on retries. */
    double retryJitter = 0.05;
};

/** End-to-end designer configuration (paper defaults). */
struct YoutiaoConfig
{
    /** Crosstalk-model fitting (Section 4.1). */
    CrosstalkFitConfig fit;
    /** FDM XY grouping (Section 4.2); capacity 5 as in Tables 1-2. */
    FdmGroupingConfig fdm;
    /** Two-level frequency allocation (Section 4.2). */
    FrequencyAllocationConfig frequency;
    /** TDM Z grouping (Section 4.3). */
    TdmGroupingConfig tdm;
    /** Readout-plane multiplexing (Section 2.2). */
    ReadoutConfig readout;
    /** Generative chip partition (Section 4.4). */
    PartitionConfig partition;
    /** Error-rate physics. */
    NoiseModelConfig noise;
    /** Unit prices / readout capacities. */
    CostModelConfig cost;
    /** Degradation-ladder budget for the *Robust design entry points. */
    RobustnessConfig robustness;
    /** Chips at or below this qubit count skip partitioning. */
    std::size_t partitionThresholdQubits = 24;
    /** Master seed for all stochastic stages. */
    std::uint64_t seed = 0x59544AF0;
};

} // namespace youtiao

#endif // YOUTIAO_CORE_CONFIG_HPP
