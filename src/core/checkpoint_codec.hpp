/**
 * @file
 * Shared checkpoint payload codecs for the pipeline's plan types.
 *
 * The per-tile (core/hierarchical.cpp), per-epoch
 * (core/drift_adaptation.cpp) and per-cell (core/fault_campaign.cpp)
 * checkpoint barriers all snapshot the same handful of plan structs;
 * these inline helpers keep the byte layout in one place. Everything
 * rides on checkpoint::ByteWriter/ByteReader, so doubles are memcpy'd
 * IEEE-754 bits and a resumed run replays bit-identical state.
 */

#ifndef YOUTIAO_CORE_CHECKPOINT_CODEC_HPP
#define YOUTIAO_CORE_CHECKPOINT_CODEC_HPP

#include "common/checkpoint.hpp"
#include "core/youtiao.hpp"

namespace youtiao::ckptcodec {

inline void
putFdmPlan(checkpoint::ByteWriter &w, const FdmPlan &p)
{
    w.vecVecU64(p.lines);
    w.vecU64(p.lineOfQubit);
}

inline FdmPlan
getFdmPlan(checkpoint::ByteReader &r)
{
    FdmPlan p;
    p.lines = r.vecVecU64();
    p.lineOfQubit = r.vecU64();
    return p;
}

inline void
putFrequencyPlan(checkpoint::ByteWriter &w, const FrequencyPlan &p)
{
    w.vecF64(p.frequencyGHz);
    w.vecU64(p.zoneOfQubit);
    w.vecU64(p.cellOfQubit);
    w.u64(p.zoneCount);
    w.f64(p.crosstalkCost);
}

inline FrequencyPlan
getFrequencyPlan(checkpoint::ByteReader &r)
{
    FrequencyPlan p;
    p.frequencyGHz = r.vecF64();
    p.zoneOfQubit = r.vecU64();
    p.cellOfQubit = r.vecU64();
    p.zoneCount = r.u64();
    p.crosstalkCost = r.f64();
    return p;
}

inline void
putTdmPlan(checkpoint::ByteWriter &w, const TdmPlan &p)
{
    w.u64(p.groups.size());
    for (const TdmGroup &g : p.groups) {
        w.vecU64(g.devices);
        w.u64(g.fanout);
    }
    w.vecU64(p.groupOfDevice);
}

inline TdmPlan
getTdmPlan(checkpoint::ByteReader &r)
{
    TdmPlan p;
    p.groups.resize(r.u64());
    for (TdmGroup &g : p.groups) {
        g.devices = r.vecU64();
        g.fanout = r.u64();
    }
    p.groupOfDevice = r.vecU64();
    return p;
}

inline void
putDegradation(checkpoint::ByteWriter &w, const DegradationReport &d)
{
    w.vecU64(d.excludedQubits);
    w.vecU64(d.excludedCouplers);
    w.u64(d.allocationAttempts);
    w.u64(d.fdmCapacityUsed);
    w.u64(d.demuxFallbackDevices);
    w.u64(d.dedicatedNetFallbacks);
    w.f64(d.costDeltaUsd);
    w.f64(d.residualCrosstalkCost);
    w.vecStr(d.notes);
}

inline DegradationReport
getDegradation(checkpoint::ByteReader &r)
{
    DegradationReport d;
    d.excludedQubits = r.vecU64();
    d.excludedCouplers = r.vecU64();
    d.allocationAttempts = r.u64();
    d.fdmCapacityUsed = r.u64();
    d.demuxFallbackDevices = r.u64();
    d.dedicatedNetFallbacks = r.u64();
    d.costDeltaUsd = r.f64();
    d.residualCrosstalkCost = r.f64();
    d.notes = r.vecStr();
    return d;
}

} // namespace youtiao::ckptcodec

#endif // YOUTIAO_CORE_CHECKPOINT_CODEC_HPP
