#include "core/failure_analysis.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace youtiao {

std::vector<std::size_t>
qubitsLostIfLineFails(const ChipTopology &chip, const YoutiaoDesign &design,
                      WiringPlane plane, std::size_t line_id)
{
    std::set<std::size_t> lost;
    switch (plane) {
      case WiringPlane::Xy: {
        requireConfig(line_id < design.xyPlan.lines.size(),
                      "XY line id out of range");
        for (std::size_t q : design.xyPlan.lines[line_id])
            lost.insert(q);
        break;
      }
      case WiringPlane::Z: {
        requireConfig(line_id < design.zPlan.groups.size(),
                      "Z line id out of range");
        for (std::size_t d : design.zPlan.groups[line_id].devices) {
            if (chip.deviceKind(d) == DeviceKind::Qubit) {
                lost.insert(d);
            } else {
                const CouplerInfo &c =
                    chip.coupler(d - chip.qubitCount());
                lost.insert(c.qubitA);
                lost.insert(c.qubitB);
            }
        }
        break;
      }
      case WiringPlane::Readout: {
        requireConfig(line_id < design.readout.feedlines.size(),
                      "readout feedline id out of range");
        for (std::size_t q : design.readout.feedlines[line_id])
            lost.insert(q);
        break;
      }
    }
    return {lost.begin(), lost.end()};
}

FailureImpact
analyzeFailureImpact(const ChipTopology &chip, const YoutiaoDesign &design)
{
    FailureImpact impact;
    double sum = 0.0;
    auto account = [&](WiringPlane plane, std::size_t count) {
        for (std::size_t l = 0; l < count; ++l) {
            const auto lost =
                qubitsLostIfLineFails(chip, design, plane, l);
            sum += static_cast<double>(lost.size());
            impact.worstQubitsLost =
                std::max(impact.worstQubitsLost, lost.size());
            ++impact.totalLines;
        }
    };
    account(WiringPlane::Xy, design.xyPlan.lines.size());
    account(WiringPlane::Z, design.zPlan.groups.size());
    account(WiringPlane::Readout, design.readout.feedlines.size());
    impact.meanQubitsLost =
        impact.totalLines == 0
            ? 0.0
            : sum / static_cast<double>(impact.totalLines);
    return impact;
}

} // namespace youtiao
