#include "core/fault_tolerant.hpp"

#include <algorithm>
#include <array>

#include "circuit/surface_code_circuit.hpp"
#include "common/error.hpp"
#include "noise/equivalent_distance.hpp"

namespace youtiao {

namespace {

constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

void
addGroup(TdmPlan &plan, std::vector<std::size_t> devices)
{
    TdmGroup group;
    if (devices.size() > 2)
        group.fanout = 4;
    else if (devices.size() == 2)
        group.fanout = 2;
    else
        group.fanout = 1;
    group.devices = std::move(devices);
    const std::size_t id = plan.groups.size();
    for (std::size_t d : group.devices)
        plan.groupOfDevice[d] = id;
    plan.groups.push_back(std::move(group));
}

} // namespace

SurfaceCodeWiring
designSurfaceCodeWiring(const SurfaceCodeLayout &layout,
                        const YoutiaoConfig &config,
                        std::size_t overlap_budget)
{
    const ChipTopology &chip = layout.chip;
    SurfaceCodeWiring out;

    // XY plane: FDM grouping over the equivalent-distance graph, exactly
    // as on generic chips.
    const SymmetricMatrix d_equiv = equivalentDistanceMatrix(
        qubitPhysicalDistanceMatrix(chip),
        qubitTopologicalDistanceMatrix(chip), 0.6, 0.4);
    out.xyPlan = groupFdm(d_equiv, config.fdm);

    // Z plane.
    out.zPlan.groupOfDevice.assign(chip.deviceCount(), kUnassigned);

    // 1. One DEMUX per stabilizer's couplers: the dance fires them in
    //    different steps, so deep multiplexing is depth-free.
    for (std::size_t m = 0; m < chip.qubitCount(); ++m) {
        if (layout.roles[m] == SurfaceCodeRole::Data)
            continue;
        std::vector<std::size_t> group;
        for (const Incidence &inc : chip.qubitGraph().incidences(m))
            group.push_back(chip.couplerDeviceId(inc.edge));
        addGroup(out.zPlan, std::move(group));
    }

    // 2. Data qubits: active-step sets from the dance; greedy pairing
    //    whose overlaps stay inside the sacrificed-step set.
    const auto steps = surfaceCodeDanceSteps(layout);
    std::vector<std::array<bool, 4>> active(chip.qubitCount(),
                                            {false, false, false, false});
    for (std::size_t s = 0; s < steps.size(); ++s) {
        for (const auto &[m, d] : steps[s])
            active[d][s] = true;
    }
    std::vector<std::size_t> data_qubits;
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        if (layout.roles[q] == SurfaceCodeRole::Data)
            data_qubits.push_back(q);
    }
    // Fewest active steps first: the easiest qubits to pair.
    std::sort(data_qubits.begin(), data_qubits.end(),
              [&active](std::size_t a, std::size_t b) {
                  const auto count = [&active](std::size_t q) {
                      return std::count(active[q].begin(), active[q].end(),
                                        true);
                  };
                  return count(a) != count(b) ? count(a) < count(b)
                                              : a < b;
              });
    std::array<bool, 4> sacrificed{false, false, false, false};
    std::size_t sacrificed_count = 0;
    std::vector<bool> paired(chip.qubitCount(), false);
    for (std::size_t i = 0; i < data_qubits.size(); ++i) {
        const std::size_t a = data_qubits[i];
        if (paired[a])
            continue;
        for (std::size_t j = i + 1; j < data_qubits.size(); ++j) {
            const std::size_t b = data_qubits[j];
            if (paired[b])
                continue;
            // Steps where both would contend for the shared DEMUX.
            std::array<bool, 4> overlap{};
            std::size_t extra = 0;
            for (std::size_t s = 0; s < 4; ++s) {
                overlap[s] = active[a][s] && active[b][s];
                if (overlap[s] && !sacrificed[s])
                    ++extra;
            }
            if (sacrificed_count + extra > overlap_budget)
                continue;
            for (std::size_t s = 0; s < 4; ++s) {
                if (overlap[s] && !sacrificed[s]) {
                    sacrificed[s] = true;
                    ++sacrificed_count;
                }
            }
            addGroup(out.zPlan, {a, b});
            paired[a] = true;
            paired[b] = true;
            break;
        }
    }

    // 3. Everything else -- measure qubits (Z-active in every step) and
    //    unpaired data qubits -- keeps a dedicated line.
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        if (out.zPlan.groupOfDevice[q] == kUnassigned)
            addGroup(out.zPlan, {q});
    }
    out.sacrificedSteps = sacrificed_count;
    requireInternal(allGatesRealizable(chip, out.zPlan),
                    "surface-code wiring broke a gate");

    out.counts = multiplexedWiringCounts(chip.qubitCount(), out.xyPlan,
                                         out.zPlan, config.cost);
    out.costUsd = wiringCostUsd(out.counts, config.cost);
    return out;
}

} // namespace youtiao
