/**
 * @file
 * Online drift adaptation of a finished YOUTIAO design.
 *
 * Replays a simulated drift trace (noise/drift.hpp) against a design
 * under one of three wiring policies:
 *  - Static: the shipped allocation is never touched (the paper's
 *    implicit assumption);
 *  - Hopping: groups cycle their members through the group's own
 *    channel table on a seeded FHSS schedule (multiplex/fhss.hpp),
 *    averaging TLS exposure without any recalibration;
 *  - Reallocate: at each epoch, groups dirtied by a TLS arrival, a band
 *    mask, an exact-frequency collision or drifted crosstalk are
 *    re-optimized cell-by-cell with the incremental O(deg) cost
 *    (IncrementalAllocationCost), skipping masked and occupied cells so
 *    the repair is DRC-clean by construction; a zone left with no
 *    usable cell triggers the full designRobust retry ladder with the
 *    epoch's masks, and every concession lands in the accumulated
 *    DegradationReport.
 *
 * All three evaluate the same seeded random-layer circuit per epoch, so
 * fidelity series are directly comparable, and every path is a pure
 * function of (design, trace, config) - bit-identical across runs and
 * thread counts.
 */

#ifndef YOUTIAO_CORE_DRIFT_ADAPTATION_HPP
#define YOUTIAO_CORE_DRIFT_ADAPTATION_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/youtiao.hpp"
#include "multiplex/fhss.hpp"
#include "noise/drift.hpp"

namespace youtiao {

/** How a design answers drift. */
enum class DriftPolicy
{
    Static,
    Hopping,
    Reallocate,
};

const char *driftPolicyName(DriftPolicy policy);

/** Adaptation knobs. */
struct DriftAdaptationConfig
{
    DriftPolicy policy = DriftPolicy::Static;
    /** Hop-schedule generation (Hopping only). */
    FhssConfig hop;
    /** Hops averaged per epoch when hopping. */
    std::size_t hopsPerEpoch = 8;
    /** A member within this of an active TLS dirties its group (GHz). */
    double tlsProximityGHz = 0.1;
    /** A qubit whose crosstalk scale moved by more than this factor
     *  since its last retune dirties its group. */
    double scaleDirtyRatio = 1.25;
    /** Random 1q-gate layers in the per-epoch evaluation circuit. */
    std::size_t fidelityLayers = 12;
    /** Seed of the evaluation circuits (shared across policies). */
    std::uint64_t circuitSeed = 0xC17C;
};

/** One epoch of the replay. */
struct DriftEpochResult
{
    std::size_t epoch = 0;
    /** Evaluation-circuit fidelity under this epoch's physics. */
    double fidelity = 0.0;
    /** Allocation objective of the frequencies in force. */
    double allocationCost = 0.0;
    /** Groups re-optimized this epoch (Reallocate only). */
    std::size_t dirtyGroups = 0;
    /** Qubits whose operating frequency changed this epoch. */
    std::size_t retunedQubits = 0;
    /** DRC violations: same-frequency qubit pairs plus qubits parked
     *  inside a masked band (max over hops when hopping). */
    std::size_t spectrumViolations = 0;
    /** True when the epoch fell back to the full designRobust ladder. */
    bool fullRedesign = false;
};

/** The whole replay under one policy. */
struct DriftAdaptationResult
{
    DriftPolicy policy = DriftPolicy::Static;
    std::vector<DriftEpochResult> epochs;
    /** Frequencies in force after the last epoch. */
    std::vector<double> finalFrequencyGHz;
    /** Ladder concessions accumulated over every full redesign. */
    DegradationReport degradation;

    double endFidelity() const;
    double meanFidelity() const;
    std::size_t totalViolations() const;
    std::size_t totalRetunes() const;
    std::size_t fullRedesigns() const;
};

/** Replays a drift trace against a design under one policy. */
class DriftAdapter
{
  public:
    DriftAdapter(YoutiaoConfig config, DriftAdaptationConfig adapt);

    /**
     * Replay @p trace against @p design of @p chip. @p data supplies the
     * measured crosstalk the drift trace modulates. The design itself is
     * never mutated; the result carries the adapted frequencies.
     */
    DriftAdaptationResult run(const ChipTopology &chip,
                              const YoutiaoDesign &design,
                              const ChipCharacterization &data,
                              const DriftTrace &trace) const;

  private:
    YoutiaoConfig config_;
    DriftAdaptationConfig adapt_;
};

/** Side-by-side text table of several policies' replays. */
std::string
driftAdaptationReport(const std::vector<DriftAdaptationResult> &results);

/**
 * JSON document bundling the trace with every policy's epoch series
 * (schema youtiao-drift-adaptation-1, docs/FILE_FORMATS.md).
 */
std::string
driftResultsToJson(const DriftTrace &trace,
                   const std::vector<DriftAdaptationResult> &results);

} // namespace youtiao

#endif // YOUTIAO_CORE_DRIFT_ADAPTATION_HPP
