#include "core/serialization.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace youtiao {

namespace {

void
writeSizeVector(std::ostream &out, const char *key,
                const std::vector<std::size_t> &values)
{
    out << key;
    for (std::size_t v : values)
        out << ' ' << v;
    out << '\n';
}

void
writeDoubleVector(std::ostream &out, const char *key,
                  const std::vector<double> &values)
{
    out << key;
    out.precision(17);
    for (double v : values)
        out << ' ' << v;
    out << '\n';
}

void
writeSymmetric(std::ostream &out, const char *key,
               const SymmetricMatrix &m)
{
    out << key << ' ' << m.size();
    out.precision(17);
    for (std::size_t i = 0; i < m.size(); ++i)
        for (std::size_t j = i; j < m.size(); ++j)
            out << ' ' << m(i, j);
    out << '\n';
}

/** Tokenized line reader expecting specific keys in order. */
class LineReader
{
  public:
    explicit LineReader(std::istream &in)
        : in_(in)
    {}

    std::istringstream
    expect(const std::string &key)
    {
        std::string line;
        // Skip blank lines and comments. A failed getline used to fall
        // through with an empty line and produce a misleading
        // "expected key 'X', found ''" -- report truncation as such.
        bool have_line = false;
        while (std::getline(in_, line)) {
            if (!line.empty() && line[0] != '#') {
                have_line = true;
                break;
            }
        }
        requireConfig(have_line,
                      "unexpected end of design file while looking for '" +
                          key + "'");
        std::istringstream stream(line);
        std::string found;
        stream >> found;
        requireConfig(found == key, "expected key '" + key +
                                        "', found '" + found + "'");
        return stream;
    }

  private:
    std::istream &in_;
};

/**
 * Upper bound on how many whitespace-separated values @p stream's line
 * can still hold (every value costs at least one character plus a
 * separator). Counts parsed from garbled files are checked against it
 * before sizing containers, so corruption yields ConfigError instead of
 * a multi-gigabyte allocation.
 */
std::size_t
tokenBudget(const std::istringstream &stream)
{
    return stream.str().size() / 2 + 1;
}

std::vector<std::size_t>
readSizeVector(std::istringstream stream)
{
    std::vector<std::size_t> values;
    std::size_t v;
    while (stream >> v)
        values.push_back(v);
    return values;
}

std::vector<double>
readDoubleVector(std::istringstream stream)
{
    std::vector<double> values;
    double v;
    while (stream >> v)
        values.push_back(v);
    return values;
}

SymmetricMatrix
readSymmetric(std::istringstream stream)
{
    std::size_t n = 0;
    requireConfig(static_cast<bool>(stream >> n),
                  "symmetric matrix missing size");
    requireConfig(n <= 65536 && n * (n + 1) / 2 <= tokenBudget(stream),
                  "symmetric matrix size implausible for its line");
    SymmetricMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            double v;
            requireConfig(static_cast<bool>(stream >> v),
                          "symmetric matrix truncated");
            m(i, j) = v;
        }
    }
    return m;
}

/** Group lists are encoded as: count, then per group: size, members... */
void
writeGroups(std::ostream &out, const char *key,
            const std::vector<std::vector<std::size_t>> &groups)
{
    out << key << ' ' << groups.size();
    for (const auto &g : groups) {
        out << ' ' << g.size();
        for (std::size_t v : g)
            out << ' ' << v;
    }
    out << '\n';
}

std::vector<std::vector<std::size_t>>
readGroups(std::istringstream stream)
{
    std::size_t count = 0;
    requireConfig(static_cast<bool>(stream >> count),
                  "group list missing count");
    requireConfig(count <= tokenBudget(stream),
                  "group count implausible for its line");
    std::vector<std::vector<std::size_t>> groups(count);
    for (auto &g : groups) {
        std::size_t size = 0;
        requireConfig(static_cast<bool>(stream >> size),
                      "group missing size");
        requireConfig(size <= tokenBudget(stream),
                      "group size implausible for its line");
        g.resize(size);
        for (std::size_t &v : g)
            requireConfig(static_cast<bool>(stream >> v),
                          "group truncated");
    }
    return groups;
}

} // namespace

void
saveDesign(std::ostream &out, const YoutiaoDesign &design)
{
    out << "youtiao-design " << kDesignFormatVersion << '\n';

    writeGroups(out, "xy.lines", design.xyPlan.lines);
    writeSizeVector(out, "xy.line_of_qubit", design.xyPlan.lineOfQubit);

    writeDoubleVector(out, "freq.ghz", design.frequencyPlan.frequencyGHz);
    writeSizeVector(out, "freq.zone", design.frequencyPlan.zoneOfQubit);
    writeSizeVector(out, "freq.cell", design.frequencyPlan.cellOfQubit);
    out << "freq.zones " << design.frequencyPlan.zoneCount << '\n';

    out << "z.groups " << design.zPlan.groups.size();
    for (const TdmGroup &g : design.zPlan.groups) {
        out << ' ' << g.fanout << ' ' << g.devices.size();
        for (std::size_t d : g.devices)
            out << ' ' << d;
    }
    out << '\n';
    writeSizeVector(out, "z.group_of_device", design.zPlan.groupOfDevice);

    writeGroups(out, "readout.feedlines", design.readout.feedlines);
    writeSizeVector(out, "readout.feedline_of_qubit",
                    design.readout.feedlineOfQubit);
    writeDoubleVector(out, "readout.resonator_ghz",
                      design.readout.resonatorGHz);

    writeSymmetric(out, "predicted.xy", design.predictedXy);
    writeSymmetric(out, "predicted.zz_mhz", design.predictedZzMHz);

    out << "counts " << design.counts.xyLines << ' '
        << design.counts.zLines << ' ' << design.counts.readoutFeeds
        << ' ' << design.counts.readoutDacs << ' '
        << design.counts.demuxSelectLines << ' ' << design.counts.demux12
        << ' ' << design.counts.demux14 << '\n';
    out.precision(17);
    out << "cost.usd " << design.costUsd << '\n';
}

std::string
designToString(const YoutiaoDesign &design)
{
    std::ostringstream out;
    saveDesign(out, design);
    return out.str();
}

YoutiaoDesign
loadDesign(std::istream &in)
{
    LineReader reader(in);
    {
        auto header = reader.expect("youtiao-design");
        int version = -1;
        requireConfig(static_cast<bool>(header >> version),
                      "missing format version");
        requireConfig(version == kDesignFormatVersion,
                      "unsupported design format version " +
                          std::to_string(version));
    }

    YoutiaoDesign design;
    design.xyPlan.lines = readGroups(reader.expect("xy.lines"));
    design.xyPlan.lineOfQubit =
        readSizeVector(reader.expect("xy.line_of_qubit"));

    design.frequencyPlan.frequencyGHz =
        readDoubleVector(reader.expect("freq.ghz"));
    design.frequencyPlan.zoneOfQubit =
        readSizeVector(reader.expect("freq.zone"));
    design.frequencyPlan.cellOfQubit =
        readSizeVector(reader.expect("freq.cell"));
    {
        auto stream = reader.expect("freq.zones");
        requireConfig(
            static_cast<bool>(stream >> design.frequencyPlan.zoneCount),
            "missing zone count");
    }

    {
        auto stream = reader.expect("z.groups");
        std::size_t count = 0;
        requireConfig(static_cast<bool>(stream >> count),
                      "missing TDM group count");
        requireConfig(count <= tokenBudget(stream),
                      "TDM group count implausible for its line");
        design.zPlan.groups.resize(count);
        for (TdmGroup &g : design.zPlan.groups) {
            std::size_t size = 0;
            requireConfig(static_cast<bool>(stream >> g.fanout >> size),
                          "TDM group truncated");
            requireConfig(size <= tokenBudget(stream),
                          "TDM group size implausible for its line");
            g.devices.resize(size);
            for (std::size_t &d : g.devices)
                requireConfig(static_cast<bool>(stream >> d),
                              "TDM group member list truncated");
        }
    }
    design.zPlan.groupOfDevice =
        readSizeVector(reader.expect("z.group_of_device"));

    design.readout.feedlines =
        readGroups(reader.expect("readout.feedlines"));
    design.readout.feedlineOfQubit =
        readSizeVector(reader.expect("readout.feedline_of_qubit"));
    design.readout.resonatorGHz =
        readDoubleVector(reader.expect("readout.resonator_ghz"));
    design.readoutPlan.lines = design.readout.feedlines;
    design.readoutPlan.lineOfQubit = design.readout.feedlineOfQubit;

    design.predictedXy = readSymmetric(reader.expect("predicted.xy"));
    design.predictedZzMHz =
        readSymmetric(reader.expect("predicted.zz_mhz"));

    {
        auto stream = reader.expect("counts");
        requireConfig(
            static_cast<bool>(
                stream >> design.counts.xyLines >> design.counts.zLines >>
                design.counts.readoutFeeds >> design.counts.readoutDacs >>
                design.counts.demuxSelectLines >> design.counts.demux12 >>
                design.counts.demux14),
            "counts line truncated");
    }
    {
        auto stream = reader.expect("cost.usd");
        requireConfig(static_cast<bool>(stream >> design.costUsd),
                      "missing cost");
    }

    validateDesign(design);
    return design;
}

void
validateDesign(const YoutiaoDesign &design)
{
    const std::size_t qubits = design.xyPlan.lineOfQubit.size();
    requireConfig(design.frequencyPlan.frequencyGHz.size() == qubits &&
                      design.frequencyPlan.zoneOfQubit.size() == qubits &&
                      design.frequencyPlan.cellOfQubit.size() == qubits &&
                      design.readout.feedlineOfQubit.size() == qubits &&
                      design.readout.resonatorGHz.size() == qubits &&
                      design.predictedXy.size() == qubits &&
                      design.predictedZzMHz.size() == qubits,
                  "design sections disagree on qubit count");
    for (std::size_t l = 0; l < design.xyPlan.lines.size(); ++l) {
        for (std::size_t q : design.xyPlan.lines[l]) {
            requireConfig(q < qubits &&
                              design.xyPlan.lineOfQubit[q] == l,
                          "xy plan map/group mismatch");
        }
    }
    for (std::size_t g = 0; g < design.zPlan.groups.size(); ++g) {
        for (std::size_t d : design.zPlan.groups[g].devices) {
            requireConfig(d < design.zPlan.groupOfDevice.size() &&
                              design.zPlan.groupOfDevice[d] == g,
                          "z plan map/group mismatch");
        }
    }
    for (std::size_t f = 0; f < design.readout.feedlines.size(); ++f) {
        for (std::size_t q : design.readout.feedlines[f]) {
            requireConfig(q < qubits &&
                              design.readout.feedlineOfQubit[q] == f,
                          "readout plan map/group mismatch");
        }
    }
}

YoutiaoDesign
designFromString(const std::string &text)
{
    std::istringstream in(text);
    return loadDesign(in);
}

void
saveTileMap(std::ostream &out, const TileMap &map)
{
    out << "youtiao-tiles " << kTileMapFormatVersion << '\n';
    out << "lattice " << map.tilesX << ' ' << map.tilesY << '\n';
    out.precision(17);
    writeDoubleVector(out, "xcuts.mm", map.xCutsMm);
    writeDoubleVector(out, "ycuts.mm", map.yCutsMm);
    out << "map " << map.tileOfQubit.size();
    for (std::size_t t : map.tileOfQubit)
        out << ' ' << t;
    out << '\n';
}

std::string
tileMapToString(const TileMap &map)
{
    std::ostringstream out;
    saveTileMap(out, map);
    return out.str();
}

TileMap
loadTileMap(std::istream &in)
{
    LineReader reader(in);
    {
        auto header = reader.expect("youtiao-tiles");
        int version = -1;
        requireConfig(static_cast<bool>(header >> version),
                      "missing tile-map format version");
        requireConfig(version == kTileMapFormatVersion,
                      "unsupported tile-map format version " +
                          std::to_string(version));
    }

    TileMap map;
    {
        auto stream = reader.expect("lattice");
        requireConfig(
            static_cast<bool>(stream >> map.tilesX >> map.tilesY),
            "tile lattice line truncated");
        requireConfig(map.tilesX >= 1 && map.tilesY >= 1,
                      "tile lattice needs at least one tile per axis");
        // The cut lists and the per-qubit map are sized from the lattice
        // shape; an implausible shape must die here, before resize.
        requireConfig(map.tilesX <= 65536 && map.tilesY <= 65536,
                      "tile lattice implausibly large");
    }
    map.xCutsMm = readDoubleVector(reader.expect("xcuts.mm"));
    map.yCutsMm = readDoubleVector(reader.expect("ycuts.mm"));
    {
        auto stream = reader.expect("map");
        std::size_t count = 0;
        requireConfig(static_cast<bool>(stream >> count),
                      "tile map missing qubit count");
        requireConfig(count <= tokenBudget(stream),
                      "tile map qubit count implausible for its line");
        map.tileOfQubit.resize(count);
        for (std::size_t &t : map.tileOfQubit)
            requireConfig(static_cast<bool>(stream >> t),
                          "tile map truncated");
    }
    validateTileMap(map, map.tileOfQubit.size());
    return map;
}

TileMap
tileMapFromString(const std::string &text)
{
    std::istringstream in(text);
    return loadTileMap(in);
}

} // namespace youtiao
