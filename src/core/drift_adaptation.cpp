#include "core/drift_adaptation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numbers>
#include <sstream>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/prng.hpp"
#include "common/units.hpp"
#include "core/checkpoint_codec.hpp"

namespace youtiao {

namespace {

/** Geometry of the allocator's zone/cell lattice for a plan. */
struct CellGrid
{
    double loGHz = 0.0;
    double zoneWidth = 0.0;
    double cellGHz = 0.0;
    std::size_t cellsPerZone = 0;

    double
    frequency(std::size_t zone, std::size_t cell) const
    {
        return loGHz + static_cast<double>(zone) * zoneWidth +
               (static_cast<double>(cell) + 0.5) * cellGHz;
    }
};

CellGrid
makeGrid(const FrequencyAllocationConfig &config, std::size_t zone_count)
{
    CellGrid grid;
    grid.loGHz = config.loGHz;
    grid.zoneWidth = (config.hiGHz - config.loGHz) /
                     static_cast<double>(std::max<std::size_t>(1,
                                                               zone_count));
    grid.cellGHz = config.cellMHz * units::MHz;
    grid.cellsPerZone = static_cast<std::size_t>(
        std::floor(grid.zoneWidth / grid.cellGHz));
    return grid;
}

bool
isMasked(double f_ghz,
         const std::vector<std::pair<double, double>> &masks)
{
    for (const auto &[lo, hi] : masks) {
        if (f_ghz >= lo && f_ghz < hi)
            return true;
    }
    return false;
}

/** Excess drive error qubit @p q would pick up at @p f_ghz from the
 *  epoch's active TLS population. */
double
tlsPenalty(std::size_t q, double f_ghz,
           const std::vector<TlsDefect> &active)
{
    double penalty = 0.0;
    for (const TlsDefect &d : active) {
        if (d.qubit != q)
            continue;
        const double df =
            2.0 * (f_ghz - d.frequencyGHz) / d.linewidthGHz;
        penalty += d.strength / (1.0 + df * df);
    }
    return penalty;
}

/** In-line pulse leakage of qubit @p q at @p f_ghz towards its mates
 *  (IncrementalAllocationCost tracks only the spatial term). */
double
lineLeakage(std::size_t q, double f_ghz,
            const std::vector<double> &frequency_ghz,
            const CrosstalkNeighborhood &neighborhood,
            const NoiseModel &noise)
{
    double leak = 0.0;
    const auto ids = neighborhood.neighborIds(q);
    const auto mate = neighborhood.neighborSameLine(q);
    for (std::size_t k = 0; k < ids.size(); ++k) {
        if (mate[k] != 0.0)
            leak += noise.sharedLineLeakage(
                std::abs(f_ghz - frequency_ghz[ids[k]]));
    }
    return leak;
}

/** The shared evaluation circuit of one epoch: seeded random 1q-gate
 *  layers over the whole chip, identical for every policy. */
QuantumCircuit
epochCircuit(std::size_t qubit_count, std::size_t layers,
             std::uint64_t circuit_seed, std::size_t epoch)
{
    Prng prng(taskSeed(circuit_seed, epoch));
    QuantumCircuit qc(qubit_count);
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t q = 0; q < qubit_count; ++q) {
            const double angle =
                prng.uniform(-std::numbers::pi, std::numbers::pi);
            if (prng.bernoulli(0.5))
                qc.rx(q, angle);
            else
                qc.ry(q, angle);
        }
        qc.barrier();
    }
    return qc;
}

std::size_t
maskViolations(const std::vector<double> &frequency_ghz,
               const std::vector<std::pair<double, double>> &masks)
{
    std::size_t hits = 0;
    for (double f : frequency_ghz)
        hits += isMasked(f, masks) ? 1 : 0;
    return hits;
}

/**
 * Per-epoch checkpoint payload: everything the epoch loop mutates (the
 * wiring plans, the retune baseline, the running degradation report and
 * every epoch row so far). One evolving key per policy -- three
 * policies may run concurrently in one process -- whose newest valid
 * snapshot resumes the loop at epoch + 1.
 */
struct EpochSnapshot
{
    std::size_t epoch = 0;
    FdmPlan plan;
    FrequencyPlan freq;
    std::vector<double> retuneScale;
    DegradationReport degradation;
    std::vector<DriftEpochResult> rows;
};

std::vector<std::uint8_t>
packEpochSnapshot(const EpochSnapshot &s)
{
    checkpoint::ByteWriter w;
    w.u64(s.epoch);
    ckptcodec::putFdmPlan(w, s.plan);
    ckptcodec::putFrequencyPlan(w, s.freq);
    w.vecF64(s.retuneScale);
    ckptcodec::putDegradation(w, s.degradation);
    w.u64(s.rows.size());
    for (const DriftEpochResult &row : s.rows) {
        w.u64(row.epoch);
        w.f64(row.fidelity);
        w.f64(row.allocationCost);
        w.u64(row.dirtyGroups);
        w.u64(row.retunedQubits);
        w.u64(row.spectrumViolations);
        w.boolean(row.fullRedesign);
    }
    return w.bytes();
}

EpochSnapshot
unpackEpochSnapshot(const std::vector<std::uint8_t> &bytes)
{
    checkpoint::ByteReader r(bytes);
    EpochSnapshot s;
    s.epoch = r.u64();
    s.plan = ckptcodec::getFdmPlan(r);
    s.freq = ckptcodec::getFrequencyPlan(r);
    s.retuneScale = r.vecF64();
    s.degradation = ckptcodec::getDegradation(r);
    s.rows.resize(r.u64());
    for (DriftEpochResult &row : s.rows) {
        row.epoch = r.u64();
        row.fidelity = r.f64();
        row.allocationCost = r.f64();
        row.dirtyGroups = r.u64();
        row.retunedQubits = r.u64();
        row.spectrumViolations = r.u64();
        row.fullRedesign = r.boolean();
    }
    requireConfig(r.exhausted(),
                  "drift epoch snapshot has trailing bytes");
    return s;
}

/** Fold one full-redesign's concessions into the running report. */
void
mergeDegradation(DegradationReport &into, const DegradationReport &from,
                 std::size_t epoch)
{
    into.allocationAttempts += from.allocationAttempts;
    if (from.fdmCapacityUsed != 0)
        into.fdmCapacityUsed = from.fdmCapacityUsed;
    into.demuxFallbackDevices += from.demuxFallbackDevices;
    into.dedicatedNetFallbacks += from.dedicatedNetFallbacks;
    into.costDeltaUsd += from.costDeltaUsd;
    into.residualCrosstalkCost = from.residualCrosstalkCost;
    for (const std::string &note : from.notes)
        into.notes.push_back("epoch " + std::to_string(epoch) + ": " +
                             note);
}

} // namespace

const char *
driftPolicyName(DriftPolicy policy)
{
    switch (policy) {
      case DriftPolicy::Static:
        return "static";
      case DriftPolicy::Hopping:
        return "hopping";
      case DriftPolicy::Reallocate:
        return "reallocate";
    }
    return "?";
}

double
DriftAdaptationResult::endFidelity() const
{
    return epochs.empty() ? 0.0 : epochs.back().fidelity;
}

double
DriftAdaptationResult::meanFidelity() const
{
    if (epochs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &e : epochs)
        sum += e.fidelity;
    return sum / static_cast<double>(epochs.size());
}

std::size_t
DriftAdaptationResult::totalViolations() const
{
    std::size_t n = 0;
    for (const auto &e : epochs)
        n += e.spectrumViolations;
    return n;
}

std::size_t
DriftAdaptationResult::totalRetunes() const
{
    std::size_t n = 0;
    for (const auto &e : epochs)
        n += e.retunedQubits;
    return n;
}

std::size_t
DriftAdaptationResult::fullRedesigns() const
{
    std::size_t n = 0;
    for (const auto &e : epochs)
        n += e.fullRedesign ? 1 : 0;
    return n;
}

DriftAdapter::DriftAdapter(YoutiaoConfig config,
                           DriftAdaptationConfig adapt)
    : config_(std::move(config)), adapt_(adapt)
{
    requireConfig(adapt_.hopsPerEpoch >= 1,
                  "drift adaptation: hopsPerEpoch must be >= 1");
    requireConfig(adapt_.fidelityLayers >= 1,
                  "drift adaptation: fidelityLayers must be >= 1");
    requireConfig(adapt_.scaleDirtyRatio > 1.0,
                  "drift adaptation: scaleDirtyRatio must be > 1");
}

DriftAdaptationResult
DriftAdapter::run(const ChipTopology &chip, const YoutiaoDesign &design,
                  const ChipCharacterization &data,
                  const DriftTrace &trace) const
{
    const std::size_t n = chip.qubitCount();
    requireConfig(trace.qubitCount >= n,
                  "drift adaptation: trace does not cover the chip");
    requireConfig(design.frequencyPlan.frequencyGHz.size() == n,
                  "drift adaptation: design does not cover the chip");
    const metrics::ScopedTimer timer("drift.adapt");

    DriftAdaptationResult out;
    out.policy = adapt_.policy;
    out.epochs.reserve(trace.config.epochs);

    // Mutable wiring state; Reallocate (and its full-redesign fallback)
    // are the only policies that ever change it.
    FdmPlan plan = design.xyPlan;
    FrequencyPlan freq = design.frequencyPlan;
    ChipCharacterization drifted = data;
    // Scale each qubit's crosstalk carried at its last retune; a walk
    // beyond scaleDirtyRatio from here dirties the group.
    std::vector<double> retune_scale(n, 1.0);

    HopPlan hop_plan;
    if (adapt_.policy == DriftPolicy::Hopping)
        hop_plan = buildHopPlan(plan, freq, adapt_.hop);

    std::vector<double> t1_ns;
    t1_ns.reserve(n);
    for (std::size_t q = 0; q < n; ++q)
        t1_ns.push_back(chip.qubit(q).t1Ns);

    const NoiseModel noise(config_.noise);

    // Per-epoch checkpoint barrier: resume replays the journal's newest
    // snapshot of this policy's state and re-enters the loop at the
    // next epoch.
    const std::string ckpt_key =
        std::string("drift-") + driftPolicyName(adapt_.policy) + "-epoch";
    std::size_t first_epoch = 0;
    if (checkpoint::active()) {
        std::vector<std::uint8_t> blob;
        if (checkpoint::fetch(ckpt_key, blob)) {
            EpochSnapshot snap = unpackEpochSnapshot(blob);
            plan = std::move(snap.plan);
            freq = std::move(snap.freq);
            retune_scale = std::move(snap.retuneScale);
            out.degradation = std::move(snap.degradation);
            out.epochs = std::move(snap.rows);
            first_epoch = snap.epoch + 1;
        }
    }

    for (std::size_t epoch = first_epoch; epoch < trace.config.epochs;
         ++epoch) {
        cancel::poll("drift.epoch");
        DriftEpochResult row;
        row.epoch = epoch;

        drifted.xyCrosstalk =
            driftedCrosstalk(data.xyCrosstalk, trace, epoch);
        const std::vector<TlsDefect> active = trace.activeDefects(epoch);
        std::vector<std::pair<double, double>> masks =
            config_.frequency.maskedBandsGHz;
        for (const auto &band : trace.maskedBands(epoch))
            masks.push_back(band);

        if (adapt_.policy == DriftPolicy::Reallocate) {
            const std::vector<double> before = freq.frequencyGHz;
            // Two passes at most: an incremental repair against the
            // current plan, and -- only when some zone has no usable
            // cell left -- one more against the full-redesign result,
            // which may itself carry reuse collisions to sweep.
            for (int pass = 0; pass < 2; ++pass) {
                const CellGrid grid =
                    makeGrid(config_.frequency, freq.zoneCount);
                const CrosstalkNeighborhood neighborhood(
                    drifted.xyCrosstalk, plan.lineOfQubit,
                    config_.frequency.sparseEpsilon);
                IncrementalAllocationCost running(neighborhood, noise);
                std::unordered_map<double, std::size_t> occupancy;
                for (std::size_t q = 0; q < n; ++q) {
                    running.place(q, freq.frequencyGHz[q]);
                    ++occupancy[freq.frequencyGHz[q]];
                }

                // Mark dirty groups: a member sitting in a masked
                // slice, exactly colliding with another qubit (the
                // static allocator reuses frequencies under crowding),
                // near an active TLS on its own qubit, or whose
                // crosstalk scale walked away since its last retune.
                std::vector<bool> dirty(plan.lines.size(), false);
                for (std::size_t line = 0; line < plan.lines.size();
                     ++line) {
                    for (std::size_t q : plan.lines[line]) {
                        const double f = freq.frequencyGHz[q];
                        bool near_tls = false;
                        for (const TlsDefect &d : active) {
                            if (d.qubit == q &&
                                std::abs(f - d.frequencyGHz) <=
                                    adapt_.tlsProximityGHz) {
                                near_tls = true;
                                break;
                            }
                        }
                        const double ratio =
                            trace.scale(epoch, q) / retune_scale[q];
                        if (near_tls || isMasked(f, masks) ||
                            occupancy.at(f) > 1 ||
                            ratio > adapt_.scaleDirtyRatio ||
                            ratio < 1.0 / adapt_.scaleDirtyRatio) {
                            dirty[line] = true;
                            break;
                        }
                    }
                }

                // Re-pick each dirty member's cell inside its zone with
                // the O(deg) incremental objective plus the epoch's TLS
                // and in-line leakage penalties. Masked and occupied
                // cells are skipped, so the repaired allocation is
                // DRC-clean by construction; zones keep the members
                // spectrally separated exactly as the static allocator
                // laid them out.
                bool infeasible = false;
                for (std::size_t line = 0;
                     line < plan.lines.size() && !infeasible; ++line) {
                    if (!dirty[line])
                        continue;
                    ++row.dirtyGroups;
                    for (std::size_t q : plan.lines[line]) {
                        const std::size_t zone = freq.zoneOfQubit[q];
                        const double old_f = freq.frequencyGHz[q];
                        if (--occupancy.at(old_f) == 0)
                            occupancy.erase(old_f);
                        double best_cost =
                            std::numeric_limits<double>::infinity();
                        std::size_t best_cell = 0;
                        bool have_cell = false;
                        for (std::size_t cell = 0;
                             cell < grid.cellsPerZone; ++cell) {
                            const double f = grid.frequency(zone, cell);
                            if (isMasked(f, masks) ||
                                occupancy.count(f) != 0)
                                continue;
                            running.move(q, f);
                            const double cost =
                                running.total() +
                                tlsPenalty(q, f, active) +
                                lineLeakage(q, f, freq.frequencyGHz,
                                            neighborhood, noise);
                            if (cost < best_cost) {
                                best_cost = cost;
                                best_cell = cell;
                                have_cell = true;
                            }
                        }
                        if (!have_cell) {
                            infeasible = true;
                            running.move(q, old_f);
                            ++occupancy[old_f];
                            break;
                        }
                        freq.cellOfQubit[q] = best_cell;
                        freq.frequencyGHz[q] =
                            grid.frequency(zone, best_cell);
                        running.move(q, freq.frequencyGHz[q]);
                        ++occupancy[freq.frequencyGHz[q]];
                        retune_scale[q] = trace.scale(epoch, q);
                    }
                }
                row.allocationCost = running.total();
                if (!infeasible || pass == 1)
                    break;

                // A zone with no usable cell is beyond incremental
                // repair: rerun the full robust pipeline against the
                // drifted measurements with the epoch's masks, walking
                // the capacity/jitter retry ladder if it must, then
                // loop once more to sweep any reuse collisions the
                // fresh allocation brought along.
                row.fullRedesign = true;
                YoutiaoConfig fallback = config_;
                fallback.frequency.maskedBandsGHz = masks;
                const YoutiaoDesigner designer(fallback);
                auto redesign =
                    designer.designFromMeasurementsRobust(chip, drifted);
                if (!redesign.hasValue()) {
                    out.degradation.notes.push_back(
                        "epoch " + std::to_string(epoch) +
                        ": full redesign failed (" +
                        redesign.error().toString() +
                        "); keeping previous allocation");
                    break;
                }
                plan = redesign.value().xyPlan;
                freq = redesign.value().frequencyPlan;
                for (std::size_t q = 0; q < n; ++q)
                    retune_scale[q] = trace.scale(epoch, q);
                mergeDegradation(out.degradation,
                                 redesign.value().degradation, epoch);
                if (out.degradation.notes.empty() ||
                    redesign.value().degradation.empty()) {
                    out.degradation.notes.push_back(
                        "epoch " + std::to_string(epoch) +
                        ": full redesign under " +
                        std::to_string(masks.size()) + " masked bands");
                }
                row.allocationCost = freq.crosstalkCost;
            }
            for (std::size_t q = 0; q < n; ++q)
                row.retunedQubits += freq.frequencyGHz[q] != before[q];
        } else {
            row.allocationCost = allocationCrosstalkCost(
                freq.frequencyGHz, drifted.xyCrosstalk, noise);
        }

        // Shared physics for the epoch's evaluation circuit.
        FidelityContext ctx;
        ctx.noise = noise;
        ctx.xyCoupling = drifted.xyCrosstalk;
        ctx.zzMHz = data.zzCrosstalkMHz;
        ctx.fdmLineOfQubit = plan.lineOfQubit;
        ctx.t1Ns = t1_ns;
        for (const TlsDefect &d : active)
            ctx.tlsDefects.push_back(TlsNoiseSource{
                d.qubit, d.frequencyGHz, d.strength, d.linewidthGHz});
        const QuantumCircuit qc = epochCircuit(
            n, adapt_.fidelityLayers, adapt_.circuitSeed, epoch);

        if (adapt_.policy == DriftPolicy::Hopping) {
            // Average the hop schedule's positions across the epoch;
            // each hop is independent, so fan out deterministically.
            std::vector<std::size_t> hops(adapt_.hopsPerEpoch);
            for (std::size_t j = 0; j < hops.size(); ++j)
                hops[j] = epoch * adapt_.hopsPerEpoch + j;
            const std::vector<std::pair<double, std::size_t>> samples =
                parallelMap(hops, [&](std::size_t hop) {
                    FidelityContext hop_ctx = ctx;
                    hop_ctx.frequencyGHz =
                        frequenciesAtHop(hop_plan, freq, hop);
                    const std::size_t violations =
                        countSpectrumCollisions(hop_ctx.frequencyGHz) +
                        maskViolations(hop_ctx.frequencyGHz, masks);
                    return std::make_pair(
                        estimateFidelity(qc, hop_ctx).fidelity,
                        violations);
                });
            double sum = 0.0;
            for (const auto &[fidelity, violations] : samples) {
                sum += fidelity;
                row.spectrumViolations =
                    std::max(row.spectrumViolations, violations);
            }
            row.fidelity = sum / static_cast<double>(samples.size());
        } else {
            ctx.frequencyGHz = freq.frequencyGHz;
            row.fidelity = estimateFidelity(qc, ctx).fidelity;
            row.spectrumViolations =
                countSpectrumCollisions(freq.frequencyGHz) +
                maskViolations(freq.frequencyGHz, masks);
        }

        out.epochs.push_back(row);
        if (checkpoint::active()) {
            EpochSnapshot snap;
            snap.epoch = epoch;
            snap.plan = plan;
            snap.freq = freq;
            snap.retuneScale = retune_scale;
            snap.degradation = out.degradation;
            snap.rows = out.epochs;
            checkpoint::store(ckpt_key, packEpochSnapshot(snap));
        }
    }

    out.finalFrequencyGHz = freq.frequencyGHz;
    metrics::count("drift.epochs", out.epochs.size());
    metrics::count("drift.retunes", out.totalRetunes());
    return out;
}

std::string
driftAdaptationReport(const std::vector<DriftAdaptationResult> &results)
{
    std::ostringstream out;
    out << "-- drift adaptation --\n";
    char line[160];
    std::snprintf(line, sizeof line, "%-12s %10s %10s %8s %9s %10s\n",
                  "policy", "mean fid", "end fid", "retunes",
                  "redesigns", "violations");
    out << line;
    for (const auto &r : results) {
        std::snprintf(line, sizeof line,
                      "%-12s %9.2f%% %9.2f%% %8zu %9zu %10zu\n",
                      driftPolicyName(r.policy), 100.0 * r.meanFidelity(),
                      100.0 * r.endFidelity(), r.totalRetunes(),
                      r.fullRedesigns(), r.totalViolations());
        out << line;
    }
    for (const auto &r : results) {
        if (!r.degradation.empty())
            out << r.degradation.summary();
    }
    return out.str();
}

std::string
driftResultsToJson(const DriftTrace &trace,
                   const std::vector<DriftAdaptationResult> &results)
{
    std::ostringstream out;
    std::string trace_json = driftTraceToJson(trace);
    while (!trace_json.empty() && trace_json.back() == '\n')
        trace_json.pop_back();
    out << "{\n  \"schema\": \"youtiao-drift-adaptation-1\",\n"
        << "  \"trace\": " << trace_json << ",\n  \"policies\": [";
    char buf[128];
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"policy\": \""
            << driftPolicyName(r.policy) << "\", \"epochs\": [";
        for (std::size_t e = 0; e < r.epochs.size(); ++e) {
            const auto &row = r.epochs[e];
            std::snprintf(buf, sizeof buf,
                          "\"fidelity\": %.9f, \"allocation_cost\": %.9g",
                          row.fidelity, row.allocationCost);
            out << (e == 0 ? "\n" : ",\n") << "      {\"epoch\": "
                << row.epoch << ", " << buf
                << ", \"dirty_groups\": " << row.dirtyGroups
                << ", \"retuned_qubits\": " << row.retunedQubits
                << ", \"spectrum_violations\": " << row.spectrumViolations
                << ", \"full_redesign\": "
                << (row.fullRedesign ? "true" : "false") << "}";
        }
        out << "\n    ]}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

} // namespace youtiao
