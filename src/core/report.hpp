/**
 * @file
 * Human-readable wiring reports.
 *
 * Formats a finished YoutiaoDesign as text: resource summary, per-line
 * group listings, and an ASCII chip map showing which FDM line each qubit
 * rides (the fastest way to eyeball a grouping).
 */

#ifndef YOUTIAO_CORE_REPORT_HPP
#define YOUTIAO_CORE_REPORT_HPP

#include <string>

#include "circuit/scheduler.hpp"
#include "core/baselines.hpp"
#include "core/hierarchical.hpp"
#include "core/youtiao.hpp"

namespace youtiao {

/**
 * ASCII map of the chip: one letter per qubit at its (coarsened) physical
 * position, 'A' + (assignment % 26); '.' marks empty plane. @p assignment
 * must give a value per qubit (e.g. FdmPlan::lineOfQubit or
 * ChipPartition::regionOfQubit).
 */
std::string chipMap(const ChipTopology &chip,
                    const std::vector<std::size_t> &assignment);

/** Full multi-section report of a YOUTIAO design. */
std::string wiringReport(const ChipTopology &chip,
                         const YoutiaoDesign &design,
                         const YoutiaoConfig &config = {});

/**
 * ASCII gantt of a schedule: one row per qubit, one column per layer
 * ('.' idle, '1' one-qubit gate, '=' two-qubit gate, 'M' readout),
 * truncated at @p max_layers columns.
 */
std::string renderSchedule(const QuantumCircuit &qc,
                           const Schedule &schedule,
                           std::size_t max_layers = 72);

/** One-line cost comparison against a baseline design. */
std::string costComparison(const YoutiaoDesign &ours,
                           const BaselineDesign &baseline,
                           const std::string &baseline_name);

/**
 * Report of a hierarchical design: tile lattice, per-tile summary line,
 * seam-stitch diagnostics, and the merged cryostat bill. Large chips
 * skip the per-qubit listings of wiringReport -- at 10k qubits those
 * run to megabytes.
 */
std::string hierarchicalReport(const ChipTopology &chip,
                               const HierarchicalDesign &design,
                               const YoutiaoConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_CORE_REPORT_HPP
