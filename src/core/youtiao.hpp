/**
 * @file
 * YoutiaoDesigner: the end-to-end multiplexing-aware wiring pipeline.
 *
 * Given a chip and its crosstalk characterization, the designer
 *  1. fits XY and ZZ crosstalk models (Section 4.1),
 *  2. partitions the chip into multiplexing regions (Section 4.4),
 *  3. groups qubits onto FDM XY lines and allocates frequencies
 *     (Section 4.2),
 *  4. groups qubits and couplers onto TDM Z lines behind 1:2 / 1:4
 *     cryo-DEMUXes (Section 4.3),
 *  5. multiplexes readout feedlines, and
 *  6. tallies the physical resources and dollar cost.
 */

#ifndef YOUTIAO_CORE_YOUTIAO_HPP
#define YOUTIAO_CORE_YOUTIAO_HPP

#include "chip/topology.hpp"
#include "common/expected.hpp"
#include "common/prng.hpp"
#include "core/config.hpp"
#include "noise/crosstalk_data.hpp"
#include "sim/fidelity_estimator.hpp"

namespace youtiao {

/**
 * What the degradation ladder had to give up to finish a design. Empty
 * on a clean run; surfaced by youtiao_cli and the report writer, and
 * reproducible bit for bit from a fault spec + seed.
 */
struct DegradationReport
{
    /** Ideal-chip qubit indices excluded as dead (set by callers that
     *  applied ChipDefects before designing, e.g. the fault campaign). */
    std::vector<std::size_t> excludedQubits;
    /** Ideal-chip coupler indices excluded as broken. */
    std::vector<std::size_t> excludedCouplers;
    /** Grouping+allocation attempts consumed (1 = first try worked). */
    std::size_t allocationAttempts = 1;
    /** FDM line capacity the successful attempt used (0 = configured). */
    std::size_t fdmCapacityUsed = 0;
    /** Devices moved to dedicated Z lines over broken DEMUX channels. */
    std::size_t demuxFallbackDevices = 0;
    /** Nets re-routed as dedicated lines after rip-up retries failed. */
    std::size_t dedicatedNetFallbacks = 0;
    /** Cost of the degraded design minus the undegraded estimate (USD);
     *  0 when nothing degraded. */
    double costDeltaUsd = 0.0;
    /** Allocation objective of the shipped plan (diagnostic; compare
     *  against an undegraded run to bound the fidelity impact). */
    double residualCrosstalkCost = 0.0;
    /** Human-readable ladder steps, in the order they happened. */
    std::vector<std::string> notes;

    bool empty() const;

    /** Text block appended to wiring reports ("-- degradation --"). */
    std::string summary() const;
};

/** Everything the pipeline produces for one chip. */
struct YoutiaoDesign
{
    /** Fitted crosstalk models. */
    CrosstalkModel xyModel;
    CrosstalkModel zzModel;
    /** Model predictions over all qubit pairs. */
    SymmetricMatrix predictedXy;
    SymmetricMatrix predictedZzMHz;
    /** Regions used for grouping (single region for small chips). */
    ChipPartition partition;
    /** XY multiplexing. */
    FdmPlan xyPlan;
    FrequencyPlan frequencyPlan;
    /** Z multiplexing. */
    TdmPlan zPlan;
    /** Readout multiplexing (capacity = readoutFeedCapacity). */
    FdmPlan readoutPlan;
    /** Readout feedlines with resonator frequencies and isolation data. */
    ReadoutPlan readout;
    /** Resource tally + cost. */
    WiringCounts counts;
    double costUsd = 0.0;
    /** What the robust pipeline gave up (empty on clean runs and on
     *  designs produced by the throwing entry points). */
    DegradationReport degradation;
};

/** The pipeline. */
class YoutiaoDesigner
{
  public:
    explicit YoutiaoDesigner(YoutiaoConfig config = {});

    const YoutiaoConfig &config() const { return config_; }

    /**
     * Full pipeline: fit models from @p data, then design the wiring for
     * @p chip.
     */
    YoutiaoDesign design(const ChipTopology &chip,
                         const ChipCharacterization &data) const;

    /**
     * Design with pre-fitted models (the Figure 12 transfer experiment:
     * fit on one chip, wire another).
     */
    YoutiaoDesign designWithModels(const ChipTopology &chip,
                                   const CrosstalkModel &xy_model,
                                   const CrosstalkModel &zz_model) const;

    /**
     * Fit-free design: run the grouping/allocation/partition pipeline
     * directly on measured crosstalk matrices with fixed equivalent-
     * distance weights (no random-forest stage). Used when calibration
     * matrices are trusted as-is -- and by the count/cost benches, where
     * the fit is irrelevant.
     */
    YoutiaoDesign designFromMeasurements(const ChipTopology &chip,
                                         const ChipCharacterization &data,
                                         double w_phy = 0.6) const;

    /**
     * Graceful-degradation variants: instead of throwing on the first
     * infeasible stage, these walk the degradation ladder (partition
     * falls back to a single region, infeasible allocations retry with
     * shrunken group sizes and seeded perturbation under
     * RobustnessConfig::maxAllocationAttempts, broken DEMUX channels
     * strand their device onto a dedicated line) and record every
     * concession in the design's DegradationReport. When nothing fails
     * the result is bit-identical to the throwing entry points. A chip
     * no ladder step can rescue yields a structured DesignError --
     * these functions do not throw on bad inputs.
     */
    Expected<YoutiaoDesign, DesignError>
    designRobust(const ChipTopology &chip,
                 const ChipCharacterization &data) const;

    Expected<YoutiaoDesign, DesignError>
    designWithModelsRobust(const ChipTopology &chip,
                           const CrosstalkModel &xy_model,
                           const CrosstalkModel &zz_model) const;

    Expected<YoutiaoDesign, DesignError>
    designFromMeasurementsRobust(const ChipTopology &chip,
                                 const ChipCharacterization &data,
                                 double w_phy = 0.6) const;

    /**
     * Build the fidelity-estimation context for a finished design
     * (uses the design's frequency allocation, FDM lines and the
     * characterization's true crosstalk when provided, else predictions).
     */
    FidelityContext makeFidelityContext(const ChipTopology &chip,
                                        const YoutiaoDesign &design) const;

  private:
    YoutiaoDesign finishDesign(const ChipTopology &chip,
                               SymmetricMatrix predicted_xy,
                               SymmetricMatrix predicted_zz, double w_phy,
                               YoutiaoDesign out) const;

    Expected<YoutiaoDesign, DesignError>
    finishDesignRobust(const ChipTopology &chip,
                       SymmetricMatrix predicted_xy,
                       SymmetricMatrix predicted_zz, double w_phy,
                       YoutiaoDesign out) const;

    YoutiaoConfig config_;
};

} // namespace youtiao

#endif // YOUTIAO_CORE_YOUTIAO_HPP
