/**
 * @file
 * YoutiaoDesigner: the end-to-end multiplexing-aware wiring pipeline.
 *
 * Given a chip and its crosstalk characterization, the designer
 *  1. fits XY and ZZ crosstalk models (Section 4.1),
 *  2. partitions the chip into multiplexing regions (Section 4.4),
 *  3. groups qubits onto FDM XY lines and allocates frequencies
 *     (Section 4.2),
 *  4. groups qubits and couplers onto TDM Z lines behind 1:2 / 1:4
 *     cryo-DEMUXes (Section 4.3),
 *  5. multiplexes readout feedlines, and
 *  6. tallies the physical resources and dollar cost.
 */

#ifndef YOUTIAO_CORE_YOUTIAO_HPP
#define YOUTIAO_CORE_YOUTIAO_HPP

#include "chip/topology.hpp"
#include "common/prng.hpp"
#include "core/config.hpp"
#include "noise/crosstalk_data.hpp"
#include "sim/fidelity_estimator.hpp"

namespace youtiao {

/** Everything the pipeline produces for one chip. */
struct YoutiaoDesign
{
    /** Fitted crosstalk models. */
    CrosstalkModel xyModel;
    CrosstalkModel zzModel;
    /** Model predictions over all qubit pairs. */
    SymmetricMatrix predictedXy;
    SymmetricMatrix predictedZzMHz;
    /** Regions used for grouping (single region for small chips). */
    ChipPartition partition;
    /** XY multiplexing. */
    FdmPlan xyPlan;
    FrequencyPlan frequencyPlan;
    /** Z multiplexing. */
    TdmPlan zPlan;
    /** Readout multiplexing (capacity = readoutFeedCapacity). */
    FdmPlan readoutPlan;
    /** Readout feedlines with resonator frequencies and isolation data. */
    ReadoutPlan readout;
    /** Resource tally + cost. */
    WiringCounts counts;
    double costUsd = 0.0;
};

/** The pipeline. */
class YoutiaoDesigner
{
  public:
    explicit YoutiaoDesigner(YoutiaoConfig config = {});

    const YoutiaoConfig &config() const { return config_; }

    /**
     * Full pipeline: fit models from @p data, then design the wiring for
     * @p chip.
     */
    YoutiaoDesign design(const ChipTopology &chip,
                         const ChipCharacterization &data) const;

    /**
     * Design with pre-fitted models (the Figure 12 transfer experiment:
     * fit on one chip, wire another).
     */
    YoutiaoDesign designWithModels(const ChipTopology &chip,
                                   const CrosstalkModel &xy_model,
                                   const CrosstalkModel &zz_model) const;

    /**
     * Fit-free design: run the grouping/allocation/partition pipeline
     * directly on measured crosstalk matrices with fixed equivalent-
     * distance weights (no random-forest stage). Used when calibration
     * matrices are trusted as-is -- and by the count/cost benches, where
     * the fit is irrelevant.
     */
    YoutiaoDesign designFromMeasurements(const ChipTopology &chip,
                                         const ChipCharacterization &data,
                                         double w_phy = 0.6) const;

    /**
     * Build the fidelity-estimation context for a finished design
     * (uses the design's frequency allocation, FDM lines and the
     * characterization's true crosstalk when provided, else predictions).
     */
    FidelityContext makeFidelityContext(const ChipTopology &chip,
                                        const YoutiaoDesign &design) const;

  private:
    YoutiaoDesign finishDesign(const ChipTopology &chip,
                               SymmetricMatrix predicted_xy,
                               SymmetricMatrix predicted_zz, double w_phy,
                               YoutiaoDesign out) const;

    YoutiaoConfig config_;
};

} // namespace youtiao

#endif // YOUTIAO_CORE_YOUTIAO_HPP
