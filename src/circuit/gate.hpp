/**
 * @file
 * Gate records of the quantum-circuit IR.
 *
 * The device basis is {RX, RY, RZ, CZ} (the paper's chips), with H, X and
 * CNOT available as logical gates that the transpiler lowers. RZ is a
 * virtual frame rotation (no physical pulse); CZ consumes the Z lines of
 * both qubits and their coupler, which is what TDM serializes.
 */

#ifndef YOUTIAO_CIRCUIT_GATE_HPP
#define YOUTIAO_CIRCUIT_GATE_HPP

#include <cstddef>

namespace youtiao {

/** Supported gate kinds. */
enum class GateKind
{
    RX,      ///< rotation about X (XY-line microwave pulse)
    RY,      ///< rotation about Y (XY-line microwave pulse)
    RZ,      ///< virtual Z rotation (frame update, no pulse)
    H,       ///< logical Hadamard (lowered to RY/RZ)
    X,       ///< logical X (lowered to RX(pi))
    CZ,      ///< native two-qubit gate (Z pulses on both qubits + coupler)
    CNOT,    ///< logical CNOT (lowered to H/CZ/H)
    SWAP,    ///< logical SWAP (lowered to three CNOTs)
    Measure, ///< dispersive readout via the qubit's readout resonator
    Barrier, ///< scheduling barrier across all qubits
};

/** True for kinds acting on two qubits. */
constexpr bool
isTwoQubit(GateKind kind)
{
    return kind == GateKind::CZ || kind == GateKind::CNOT ||
           kind == GateKind::SWAP;
}

/** True for kinds in the device's native basis. */
constexpr bool
isBasisGate(GateKind kind)
{
    return kind == GateKind::RX || kind == GateKind::RY ||
           kind == GateKind::RZ || kind == GateKind::CZ ||
           kind == GateKind::Measure || kind == GateKind::Barrier;
}

/** True for gates realized by an XY-line microwave drive. */
constexpr bool
usesXyLine(GateKind kind)
{
    return kind == GateKind::RX || kind == GateKind::RY ||
           kind == GateKind::H || kind == GateKind::X;
}

/** Printable mnemonic. */
const char *gateKindName(GateKind kind);

/** One gate instance. */
struct Gate
{
    GateKind kind = GateKind::RZ;
    /** First (or only) operand qubit. */
    std::size_t qubit0 = 0;
    /** Second operand for two-qubit kinds; ignored otherwise. */
    std::size_t qubit1 = 0;
    /** Rotation angle in radians for RX/RY/RZ; ignored otherwise. */
    double angle = 0.0;
};

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_GATE_HPP
