#include "circuit/surface_code_circuit.hpp"

#include <array>

#include "common/error.hpp"

namespace youtiao {

namespace {

/** Quadrant of the data qubit relative to its measure qubit. */
enum Quadrant { NE = 0, NW = 1, SE = 2, SW = 3 };

Quadrant
quadrantOf(const Point &measure, const Point &data)
{
    const bool east = data.x > measure.x;
    const bool north = data.y > measure.y;
    if (north)
        return east ? NE : NW;
    return east ? SE : SW;
}

} // namespace

std::array<std::vector<std::pair<std::size_t, std::size_t>>, 4>
surfaceCodeDanceSteps(const SurfaceCodeLayout &layout)
{
    const ChipTopology &chip = layout.chip;
    // Dance orders that keep every data qubit on at most one CZ per step.
    constexpr std::array<Quadrant, 4> x_order{NE, NW, SE, SW};
    constexpr std::array<Quadrant, 4> z_order{NE, SE, NW, SW};

    std::array<std::vector<std::pair<std::size_t, std::size_t>>, 4> steps;
    for (std::size_t m = 0; m < chip.qubitCount(); ++m) {
        if (layout.roles[m] == SurfaceCodeRole::Data)
            continue;
        const bool is_x = layout.roles[m] == SurfaceCodeRole::MeasureX;
        const auto &order = is_x ? x_order : z_order;
        for (const Incidence &inc : chip.qubitGraph().incidences(m)) {
            const Quadrant quad =
                quadrantOf(chip.qubit(m).position,
                           chip.qubit(inc.vertex).position);
            for (std::size_t step = 0; step < 4; ++step) {
                if (order[step] == quad) {
                    steps[step].emplace_back(m, inc.vertex);
                    break;
                }
            }
        }
    }
    return steps;
}

QuantumCircuit
makeSurfaceCodeCycles(const SurfaceCodeLayout &layout, std::size_t cycles)
{
    requireConfig(cycles >= 1, "need at least one EC cycle");
    const ChipTopology &chip = layout.chip;
    QuantumCircuit qc(chip.qubitCount(),
                      "surface code d=" + std::to_string(layout.distance));
    const auto steps = surfaceCodeDanceSteps(layout);

    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
        for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
            if (layout.roles[q] != SurfaceCodeRole::Data)
                qc.h(q);
        }
        qc.barrier();
        for (const auto &step : steps) {
            for (const auto &[m, d] : step)
                qc.cz(m, d);
            qc.barrier();
        }
        for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
            if (layout.roles[q] != SurfaceCodeRole::Data)
                qc.h(q);
        }
        qc.barrier();
        for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
            if (layout.roles[q] != SurfaceCodeRole::Data)
                qc.measure(q);
        }
        qc.barrier();
    }
    return qc;
}

} // namespace youtiao
