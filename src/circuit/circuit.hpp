/**
 * @file
 * QuantumCircuit: an ordered gate list over n qubits.
 */

#ifndef YOUTIAO_CIRCUIT_CIRCUIT_HPP
#define YOUTIAO_CIRCUIT_CIRCUIT_HPP

#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace youtiao {

/** An ordered quantum circuit. */
class QuantumCircuit
{
  public:
    QuantumCircuit() = default;

    /** A named circuit over @p qubit_count qubits. */
    QuantumCircuit(std::size_t qubit_count, std::string name = "");

    std::size_t qubitCount() const { return qubitCount_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t gateCount() const { return gates_.size(); }

    /** Append a generic gate (validated). */
    void append(const Gate &gate);

    /** @{ Convenience appenders. */
    void rx(std::size_t q, double angle);
    void ry(std::size_t q, double angle);
    void rz(std::size_t q, double angle);
    void h(std::size_t q);
    void x(std::size_t q);
    void cz(std::size_t a, std::size_t b);
    void cnot(std::size_t control, std::size_t target);
    void swap(std::size_t a, std::size_t b);
    void measure(std::size_t q);
    void barrier();
    /** @} */

    /** Number of two-qubit gates (CZ/CNOT/SWAP count as written). */
    std::size_t twoQubitGateCount() const;

    /** True when every gate is in the native basis. */
    bool isBasisOnly() const;

    /**
     * Logical depth: greedy ASAP layering by qubit availability only
     * (barriers cut across all qubits; RZ counts as a layer occupant).
     */
    std::size_t depth() const;

    /**
     * Two-qubit depth: number of ASAP layers containing at least one
     * two-qubit gate, the metric of paper Figure 14 / Table 1.
     */
    std::size_t twoQubitDepth() const;

    /**
     * The inverse circuit: gates reversed, rotation angles negated
     * (H, X, CZ, CNOT, SWAP are self-inverse). Throws ConfigError if the
     * circuit contains measurements (not invertible).
     */
    QuantumCircuit inverse() const;

  private:
    std::size_t qubitCount_ = 0;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_CIRCUIT_HPP
