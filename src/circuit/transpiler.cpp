#include "circuit/transpiler.hpp"

#include <algorithm>
#include <numbers>
#include <queue>
#include <sstream>

#include "common/error.hpp"
#include "graph/shortest_path.hpp"

namespace youtiao {

namespace {

std::string
transpileErrorMessage(GateKind kind, std::size_t gate_index,
                      std::size_t logical_a, std::size_t logical_b,
                      std::size_t physical_a, std::size_t physical_b)
{
    std::ostringstream out;
    out << "cannot route gate #" << gate_index << " ("
        << gateKindName(kind) << " l" << logical_a << ", l" << logical_b
        << "): no swap chain connects physical qubits q" << physical_a
        << " and q" << physical_b
        << " (coupling graph disconnected between them)";
    return out.str();
}

} // namespace

TranspileError::TranspileError(GateKind kind, std::size_t gate_index,
                               std::size_t logical_a,
                               std::size_t logical_b,
                               std::size_t physical_a,
                               std::size_t physical_b)
    : ConfigError(transpileErrorMessage(kind, gate_index, logical_a,
                                        logical_b, physical_a,
                                        physical_b)),
      kind_(kind), gateIndex_(gate_index), logicalA_(logical_a),
      logicalB_(logical_b), physicalA_(physical_a), physicalB_(physical_b)
{}

namespace {

constexpr double pi = std::numbers::pi;

void
emitH(QuantumCircuit &out, std::size_t q)
{
    // H = RY(pi/2) . RZ(pi) up to global phase (RZ applied first).
    out.rz(q, pi);
    out.ry(q, pi / 2.0);
}

void
emitCnot(QuantumCircuit &out, std::size_t control, std::size_t target)
{
    emitH(out, target);
    out.cz(control, target);
    emitH(out, target);
}

void
emitSwap(QuantumCircuit &out, std::size_t a, std::size_t b)
{
    emitCnot(out, a, b);
    emitCnot(out, b, a);
    emitCnot(out, a, b);
}

void
emitLowered(QuantumCircuit &out, const Gate &g, std::size_t q0,
            std::size_t q1)
{
    switch (g.kind) {
      case GateKind::RX:
        out.rx(q0, g.angle);
        break;
      case GateKind::RY:
        out.ry(q0, g.angle);
        break;
      case GateKind::RZ:
        out.rz(q0, g.angle);
        break;
      case GateKind::H:
        emitH(out, q0);
        break;
      case GateKind::X:
        out.rx(q0, pi);
        break;
      case GateKind::CZ:
        out.cz(q0, q1);
        break;
      case GateKind::CNOT:
        emitCnot(out, q0, q1);
        break;
      case GateKind::SWAP:
        emitSwap(out, q0, q1);
        break;
      case GateKind::Measure:
        out.measure(q0);
        break;
      case GateKind::Barrier:
        out.barrier();
        break;
    }
}

/**
 * Boustrophedon (snake) order over the chip plane: qubits bucketed into
 * rows by y coordinate, rows sorted bottom-up, alternating x direction.
 * Consecutive order positions are physically adjacent on grid chips, so
 * line-shaped circuits map with nearest-neighbour couplings intact.
 */
std::vector<std::size_t>
snakeOrder(const ChipTopology &chip)
{
    std::vector<std::size_t> order(chip.qubitCount());
    for (std::size_t q = 0; q < order.size(); ++q)
        order[q] = q;
    std::sort(order.begin(), order.end(),
              [&chip](std::size_t a, std::size_t b) {
                  const Point pa = chip.qubit(a).position;
                  const Point pb = chip.qubit(b).position;
                  if (pa.y != pb.y)
                      return pa.y < pb.y;
                  return pa.x < pb.x;
              });
    // Reverse every other row in place.
    std::size_t row_start = 0;
    bool reverse = false;
    for (std::size_t i = 1; i <= order.size(); ++i) {
        const bool row_end =
            i == order.size() ||
            chip.qubit(order[i]).position.y !=
                chip.qubit(order[row_start]).position.y;
        if (row_end) {
            if (reverse)
                std::reverse(order.begin() + static_cast<long>(row_start),
                             order.begin() + static_cast<long>(i));
            reverse = !reverse;
            row_start = i;
        }
    }
    return order;
}

/**
 * Shortest path between two vertices (inclusive endpoints); empty when
 * @p to is unreachable so the caller can raise a TranspileError naming
 * the gate.
 */
std::vector<std::size_t>
shortestPath(const Graph &g, std::size_t from, std::size_t to)
{
    const MultiPathResult bfs = multiPathBfs(g, from);
    if (bfs.hops[to] == kUnreachable)
        return {};
    std::vector<std::size_t> path{to};
    std::size_t at = to;
    while (at != from) {
        for (const Incidence &inc : g.incidences(at)) {
            if (bfs.hops[inc.vertex] + 1 == bfs.hops[at]) {
                at = inc.vertex;
                path.push_back(at);
                break;
            }
        }
    }
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace

QuantumCircuit
lowerToBasis(const QuantumCircuit &logical)
{
    QuantumCircuit out(logical.qubitCount(), logical.name());
    for (const Gate &g : logical.gates())
        emitLowered(out, g, g.qubit0, g.qubit1);
    return out;
}

TranspileResult
transpile(const QuantumCircuit &logical, const ChipTopology &chip)
{
    requireConfig(logical.qubitCount() <= chip.qubitCount(),
                  "circuit is wider than the chip");
    const Graph &coupling = chip.qubitGraph();

    // logical -> physical via snake placement; phys_of_logical is the
    // live mapping updated by routing swaps.
    const std::vector<std::size_t> order = snakeOrder(chip);
    std::vector<std::size_t> phys_of_logical(logical.qubitCount());
    for (std::size_t l = 0; l < logical.qubitCount(); ++l)
        phys_of_logical[l] = order[l];

    TranspileResult result;
    result.physical = QuantumCircuit(chip.qubitCount(), logical.name());

    const std::vector<Gate> &gates = logical.gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const Gate &g = gates[gi];
        if (!isTwoQubit(g.kind)) {
            const std::size_t p =
                g.kind == GateKind::Barrier ? 0
                                            : phys_of_logical[g.qubit0];
            emitLowered(result.physical, g, p, 0);
            continue;
        }
        std::size_t pa = phys_of_logical[g.qubit0];
        std::size_t pb = phys_of_logical[g.qubit1];
        if (!coupling.hasEdge(pa, pb)) {
            // Walk operand A along a shortest path until adjacent to B.
            const auto path = shortestPath(coupling, pa, pb);
            if (path.empty())
                throw TranspileError(g.kind, gi, g.qubit0, g.qubit1, pa,
                                     pb);
            for (std::size_t k = 0; k + 2 < path.size(); ++k) {
                emitSwap(result.physical, path[k], path[k + 1]);
                ++result.insertedSwaps;
                // The swap exchanges whatever logical qubits live there.
                for (std::size_t l = 0; l < phys_of_logical.size(); ++l) {
                    if (phys_of_logical[l] == path[k])
                        phys_of_logical[l] = path[k + 1];
                    else if (phys_of_logical[l] == path[k + 1])
                        phys_of_logical[l] = path[k];
                }
            }
            pa = phys_of_logical[g.qubit0];
            pb = phys_of_logical[g.qubit1];
            if (!coupling.hasEdge(pa, pb))
                throw TranspileError(g.kind, gi, g.qubit0, g.qubit1, pa,
                                     pb);
        }
        emitLowered(result.physical, g, pa, pb);
    }
    result.finalLayout = phys_of_logical;
    return result;
}

} // namespace youtiao
