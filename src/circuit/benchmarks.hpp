/**
 * @file
 * Generators for the paper's five evaluation benchmarks (Section 5.1):
 * Variational Quantum Classifier (VQC), linear Ising model trotterization
 * (ISING), Deutsch-Jozsa (DJ), Quantum Fourier Transform (QFT), and
 * Quantum K-Nearest-Neighbours via swap tests (QKNN).
 *
 * Circuits are emitted at the logical level (H/X/CNOT/rotations); the
 * transpiler lowers them to the chip basis and inserts routing SWAPs.
 */

#ifndef YOUTIAO_CIRCUIT_BENCHMARKS_HPP
#define YOUTIAO_CIRCUIT_BENCHMARKS_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/prng.hpp"

namespace youtiao {

/** The five paper benchmarks. */
enum class BenchmarkKind { VQC, ISING, DJ, QFT, QKNN };

/** Uppercase display name ("VQC", ...). */
const char *benchmarkName(BenchmarkKind kind);

/** All five kinds in paper order. */
std::vector<BenchmarkKind> allBenchmarks();

/**
 * Hardware-efficient VQC ansatz: @p layers of per-qubit RY/RZ rotations
 * (random parameters) followed by a CZ entangling ladder.
 */
QuantumCircuit makeVqc(std::size_t qubits, std::size_t layers, Prng &prng);

/**
 * First-order trotterization of the linear (chain) Ising model:
 * per step, RZZ on every chain bond plus a transverse RX on every qubit.
 */
QuantumCircuit makeIsing(std::size_t qubits, std::size_t trotter_steps,
                         double j_coupling = 1.0, double h_field = 0.8,
                         double dt = 0.1);

/**
 * Deutsch-Jozsa over @p qubits - 1 inputs and one ancilla, with a balanced
 * oracle XORing the inputs selected by @p mask (must select at least one).
 */
QuantumCircuit makeDeutschJozsa(std::size_t qubits, unsigned long mask = 1);

/** Standard QFT with controlled-phase cascades and final reversal swaps. */
QuantumCircuit makeQft(std::size_t qubits);

/**
 * QKNN distance-estimation kernel: a swap test between two
 * @p register_size-qubit feature registers (random state prep), using one
 * ancilla; total qubits = 2 * register_size + 1.
 */
QuantumCircuit makeQknn(std::size_t register_size, Prng &prng);

/**
 * Build benchmark @p kind sized for a chip with @p chip_qubits qubits
 * (uses all of them, except QKNN which uses the largest odd 2k+1 <= n).
 */
QuantumCircuit makeBenchmark(BenchmarkKind kind, std::size_t chip_qubits,
                             Prng &prng);

/** @{ Multi-qubit helpers used by the generators (exposed for tests). */

/** Controlled-phase CP(theta) via two CNOTs and three RZs. */
void appendControlledPhase(QuantumCircuit &qc, std::size_t control,
                           std::size_t target, double theta);

/** RZZ(theta) = CNOT, RZ(theta) on target, CNOT. */
void appendRzz(QuantumCircuit &qc, std::size_t a, std::size_t b,
               double theta);

/** Toffoli via the standard 6-CNOT + T-ladder decomposition. */
void appendToffoli(QuantumCircuit &qc, std::size_t a, std::size_t b,
                   std::size_t target);

/** Fredkin (controlled-SWAP) via CNOT-conjugated Toffoli. */
void appendFredkin(QuantumCircuit &qc, std::size_t control, std::size_t t1,
                   std::size_t t2);
/** @} */

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_BENCHMARKS_HPP
