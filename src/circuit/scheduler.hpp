/**
 * @file
 * List scheduler turning a gate sequence into parallel layers.
 *
 * Baseline scheduling respects qubit exclusivity only; wiring systems add
 * constraints through the LayerConstraint interface — most importantly the
 * TDM rule that gates needing Z pulses on devices behind one cryo-DEMUX
 * cannot share a time window (multiplex/tdm_scheduler), which is exactly
 * the "curse of circuit depth" the paper's grouping minimizes.
 */

#ifndef YOUTIAO_CIRCUIT_SCHEDULER_HPP
#define YOUTIAO_CIRCUIT_SCHEDULER_HPP

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace youtiao {

/** Pluggable predicate restricting which gates may share a layer. */
class LayerConstraint
{
  public:
    virtual ~LayerConstraint() = default;

    /**
     * May @p gate join a layer already holding @p layer_gates?
     * Qubit-disjointness has already been checked by the scheduler.
     */
    virtual bool canCoexist(const Gate &gate,
                            const std::vector<Gate> &layer_gates) const = 0;
};

/** Wall-clock durations per gate class (ns). */
struct GateDurations
{
    double oneQubitNs = 25.0;
    double twoQubitNs = 60.0;
    double readoutNs = 400.0;
    /** Virtual RZ costs nothing. */
    double virtualZNs = 0.0;
};

/** The layered schedule of one circuit. */
struct Schedule
{
    /** Gate indices (into the circuit) per layer. */
    std::vector<std::vector<std::size_t>> layers;

    std::size_t depth() const { return layers.size(); }

    /** Layers containing at least one two-qubit gate. */
    std::size_t twoQubitDepth(const QuantumCircuit &qc) const;

    /** Total duration: sum over layers of the slowest gate in each. */
    double durationNs(const QuantumCircuit &qc,
                      const GateDurations &durations = {}) const;
};

/**
 * ASAP list scheduling of @p qc (program order preserved per qubit).
 * @p constraint may be null for unconstrained hardware. Barriers and
 * virtual RZs do not occupy layers.
 */
Schedule scheduleCircuit(const QuantumCircuit &qc,
                         const LayerConstraint *constraint = nullptr);

/** Duration of one gate under @p durations. */
double gateDurationNs(const Gate &gate, const GateDurations &durations);

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_SCHEDULER_HPP
