/**
 * @file
 * Transpiler: lowers logical circuits to the chip basis {RX, RY, RZ, CZ}
 * and inserts routing SWAPs so every two-qubit gate acts on coupled qubits.
 */

#ifndef YOUTIAO_CIRCUIT_TRANSPILER_HPP
#define YOUTIAO_CIRCUIT_TRANSPILER_HPP

#include <cstddef>
#include <vector>

#include "chip/topology.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"

namespace youtiao {

/**
 * Routing failed to make a two-qubit gate's operands adjacent (the chip's
 * coupling graph is disconnected between them, typically after defects
 * removed the bridging couplers). Carries the offending gate so callers
 * can report which operation is unimplementable instead of a bare
 * invariant message.
 */
class TranspileError : public ConfigError
{
  public:
    TranspileError(GateKind kind, std::size_t gate_index,
                   std::size_t logical_a, std::size_t logical_b,
                   std::size_t physical_a, std::size_t physical_b);

    /** Kind of the gate that could not be routed. */
    GateKind gateKind() const { return kind_; }
    /** Index of the gate in the logical circuit's gate list. */
    std::size_t gateIndex() const { return gateIndex_; }
    /** Logical operands of the offending gate. */
    std::size_t logicalQubit0() const { return logicalA_; }
    std::size_t logicalQubit1() const { return logicalB_; }
    /** Physical qubits the operands occupied when routing gave up. */
    std::size_t physicalQubit0() const { return physicalA_; }
    std::size_t physicalQubit1() const { return physicalB_; }

  private:
    GateKind kind_;
    std::size_t gateIndex_;
    std::size_t logicalA_, logicalB_;
    std::size_t physicalA_, physicalB_;
};

/** Output of transpile(). */
struct TranspileResult
{
    /** Basis-only circuit over physical qubit indices. */
    QuantumCircuit physical;
    /** logical qubit -> physical qubit at circuit end. */
    std::vector<std::size_t> finalLayout;
    /** Routing SWAPs inserted (each lowered to 3 CZ + 1q gates). */
    std::size_t insertedSwaps = 0;
};

/**
 * Lower @p logical onto @p chip.
 *
 * Initial layout maps logical qubit i to the i-th vertex of a BFS order of
 * the coupling graph (keeping small circuits on a connected patch).
 * Non-adjacent two-qubit gates are routed by swapping one operand along a
 * BFS shortest path. Throws ConfigError when the circuit is wider than the
 * chip, and TranspileError (a ConfigError subtype naming the gate and its
 * operands) when no swap chain can make a gate's operands adjacent.
 */
TranspileResult transpile(const QuantumCircuit &logical,
                          const ChipTopology &chip);

/** Lower one logical circuit to basis gates without any routing
 *  (all-to-all connectivity assumed). */
QuantumCircuit lowerToBasis(const QuantumCircuit &logical);

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_TRANSPILER_HPP
