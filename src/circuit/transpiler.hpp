/**
 * @file
 * Transpiler: lowers logical circuits to the chip basis {RX, RY, RZ, CZ}
 * and inserts routing SWAPs so every two-qubit gate acts on coupled qubits.
 */

#ifndef YOUTIAO_CIRCUIT_TRANSPILER_HPP
#define YOUTIAO_CIRCUIT_TRANSPILER_HPP

#include <vector>

#include "chip/topology.hpp"
#include "circuit/circuit.hpp"

namespace youtiao {

/** Output of transpile(). */
struct TranspileResult
{
    /** Basis-only circuit over physical qubit indices. */
    QuantumCircuit physical;
    /** logical qubit -> physical qubit at circuit end. */
    std::vector<std::size_t> finalLayout;
    /** Routing SWAPs inserted (each lowered to 3 CZ + 1q gates). */
    std::size_t insertedSwaps = 0;
};

/**
 * Lower @p logical onto @p chip.
 *
 * Initial layout maps logical qubit i to the i-th vertex of a BFS order of
 * the coupling graph (keeping small circuits on a connected patch).
 * Non-adjacent two-qubit gates are routed by swapping one operand along a
 * BFS shortest path. Throws ConfigError when the circuit is wider than the
 * chip or the chip is disconnected.
 */
TranspileResult transpile(const QuantumCircuit &logical,
                          const ChipTopology &chip);

/** Lower one logical circuit to basis gates without any routing
 *  (all-to-all connectivity assumed). */
QuantumCircuit lowerToBasis(const QuantumCircuit &logical);

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_TRANSPILER_HPP
