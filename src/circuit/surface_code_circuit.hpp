/**
 * @file
 * Error-correction cycle circuits for surface-code layouts
 * (paper Figure 11 (b) and Table 1).
 */

#ifndef YOUTIAO_CIRCUIT_SURFACE_CODE_CIRCUIT_HPP
#define YOUTIAO_CIRCUIT_SURFACE_CODE_CIRCUIT_HPP

#include <array>
#include <utility>
#include <vector>

#include "chip/surface_code_layout.hpp"
#include "circuit/circuit.hpp"

namespace youtiao {

/**
 * The four-step CZ dance of one EC round: step s holds (measure, data)
 * pairs gated simultaneously. X checks sweep NE-NW-SE-SW, Z checks
 * NE-SE-NW-SW, so no data qubit appears twice in one step.
 */
std::array<std::vector<std::pair<std::size_t, std::size_t>>, 4>
surfaceCodeDanceSteps(const SurfaceCodeLayout &layout);

/**
 * The error-correction circuit of @p cycles rounds on @p layout: per
 * round, Hadamards on every measure qubit, the four-step CZ dance
 * (X checks sweep NE-NW-SE-SW, Z checks NE-SE-NW-SW so no data qubit is
 * claimed twice per step), closing Hadamards, and measure-qubit readout.
 * Barriers align the dance steps across stabilizers.
 */
QuantumCircuit makeSurfaceCodeCycles(const SurfaceCodeLayout &layout,
                                     std::size_t cycles);

} // namespace youtiao

#endif // YOUTIAO_CIRCUIT_SURFACE_CODE_CIRCUIT_HPP
