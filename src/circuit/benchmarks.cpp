#include "circuit/benchmarks.hpp"

#include <numbers>
#include <string>

#include "common/error.hpp"

namespace youtiao {

namespace {

constexpr double pi = std::numbers::pi;

} // namespace

const char *
benchmarkName(BenchmarkKind kind)
{
    switch (kind) {
      case BenchmarkKind::VQC: return "VQC";
      case BenchmarkKind::ISING: return "ISING";
      case BenchmarkKind::DJ: return "DJ";
      case BenchmarkKind::QFT: return "QFT";
      case BenchmarkKind::QKNN: return "QKNN";
    }
    return "?";
}

std::vector<BenchmarkKind>
allBenchmarks()
{
    return {BenchmarkKind::VQC, BenchmarkKind::ISING, BenchmarkKind::DJ,
            BenchmarkKind::QFT, BenchmarkKind::QKNN};
}

void
appendControlledPhase(QuantumCircuit &qc, std::size_t control,
                      std::size_t target, double theta)
{
    // CP(theta) = RZ_c(theta/2) RZ_t(theta/2) CX RZ_t(-theta/2) CX
    qc.rz(control, theta / 2.0);
    qc.rz(target, theta / 2.0);
    qc.cnot(control, target);
    qc.rz(target, -theta / 2.0);
    qc.cnot(control, target);
}

void
appendRzz(QuantumCircuit &qc, std::size_t a, std::size_t b, double theta)
{
    qc.cnot(a, b);
    qc.rz(b, theta);
    qc.cnot(a, b);
}

void
appendToffoli(QuantumCircuit &qc, std::size_t a, std::size_t b,
              std::size_t target)
{
    const double t = pi / 4.0;
    qc.h(target);
    qc.cnot(b, target);
    qc.rz(target, -t);
    qc.cnot(a, target);
    qc.rz(target, t);
    qc.cnot(b, target);
    qc.rz(target, -t);
    qc.cnot(a, target);
    qc.rz(b, t);
    qc.rz(target, t);
    qc.h(target);
    qc.cnot(a, b);
    qc.rz(a, t);
    qc.rz(b, -t);
    qc.cnot(a, b);
}

void
appendFredkin(QuantumCircuit &qc, std::size_t control, std::size_t t1,
              std::size_t t2)
{
    qc.cnot(t2, t1);
    appendToffoli(qc, control, t1, t2);
    qc.cnot(t2, t1);
}

QuantumCircuit
makeVqc(std::size_t qubits, std::size_t layers, Prng &prng)
{
    requireConfig(qubits >= 2, "VQC needs at least 2 qubits");
    QuantumCircuit qc(qubits, "VQC");
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t q = 0; q < qubits; ++q) {
            qc.ry(q, prng.uniform(-pi, pi));
            qc.rz(q, prng.uniform(-pi, pi));
        }
        // Brickwork CZ entangler: even bonds then odd bonds, so each layer
        // is maximally parallel on hardware.
        for (std::size_t q = 0; q + 1 < qubits; q += 2)
            qc.cz(q, q + 1);
        for (std::size_t q = 1; q + 1 < qubits; q += 2)
            qc.cz(q, q + 1);
    }
    for (std::size_t q = 0; q < qubits; ++q)
        qc.measure(q);
    return qc;
}

QuantumCircuit
makeIsing(std::size_t qubits, std::size_t trotter_steps, double j_coupling,
          double h_field, double dt)
{
    requireConfig(qubits >= 2, "ISING needs at least 2 qubits");
    QuantumCircuit qc(qubits, "ISING");
    for (std::size_t q = 0; q < qubits; ++q)
        qc.h(q); // start in |+>^n
    for (std::size_t s = 0; s < trotter_steps; ++s) {
        for (std::size_t q = 0; q + 1 < qubits; q += 2)
            appendRzz(qc, q, q + 1, -2.0 * j_coupling * dt);
        for (std::size_t q = 1; q + 1 < qubits; q += 2)
            appendRzz(qc, q, q + 1, -2.0 * j_coupling * dt);
        for (std::size_t q = 0; q < qubits; ++q)
            qc.rx(q, -2.0 * h_field * dt);
    }
    for (std::size_t q = 0; q < qubits; ++q)
        qc.measure(q);
    return qc;
}

QuantumCircuit
makeDeutschJozsa(std::size_t qubits, unsigned long mask)
{
    requireConfig(qubits >= 2, "DJ needs at least 2 qubits");
    const std::size_t inputs = qubits - 1;
    const std::size_t ancilla = qubits - 1;
    requireConfig(mask != 0, "balanced oracle mask must be non-zero");
    requireConfig(inputs >= 64 || mask < (1ul << inputs),
                  "oracle mask wider than the input register");
    QuantumCircuit qc(qubits, "DJ");
    qc.x(ancilla);
    for (std::size_t q = 0; q < qubits; ++q)
        qc.h(q);
    // Balanced oracle: f(x) = parity of the masked inputs.
    for (std::size_t q = 0; q < inputs; ++q) {
        if (mask & (1ul << q))
            qc.cnot(q, ancilla);
    }
    for (std::size_t q = 0; q < inputs; ++q)
        qc.h(q);
    for (std::size_t q = 0; q < inputs; ++q)
        qc.measure(q);
    return qc;
}

QuantumCircuit
makeQft(std::size_t qubits)
{
    requireConfig(qubits >= 1, "QFT needs at least 1 qubit");
    QuantumCircuit qc(qubits, "QFT");
    for (std::size_t i = 0; i < qubits; ++i) {
        qc.h(i);
        for (std::size_t j = i + 1; j < qubits; ++j) {
            const double theta =
                pi / static_cast<double>(1ul << (j - i));
            appendControlledPhase(qc, j, i, theta);
        }
    }
    for (std::size_t i = 0; i < qubits / 2; ++i)
        qc.swap(i, qubits - 1 - i);
    for (std::size_t q = 0; q < qubits; ++q)
        qc.measure(q);
    return qc;
}

QuantumCircuit
makeQknn(std::size_t register_size, Prng &prng)
{
    requireConfig(register_size >= 1, "QKNN needs register size >= 1");
    const std::size_t n = 2 * register_size + 1;
    const std::size_t ancilla = 0;
    QuantumCircuit qc(n, "QKNN");
    // Random product-state feature encodings in both registers.
    for (std::size_t k = 0; k < 2 * register_size; ++k) {
        qc.ry(1 + k, prng.uniform(0.0, pi));
        qc.rz(1 + k, prng.uniform(-pi, pi));
    }
    // Swap test: H on the ancilla, Fredkin per qubit pair, H, measure.
    qc.h(ancilla);
    for (std::size_t k = 0; k < register_size; ++k)
        appendFredkin(qc, ancilla, 1 + k, 1 + register_size + k);
    qc.h(ancilla);
    qc.measure(ancilla);
    return qc;
}

QuantumCircuit
makeBenchmark(BenchmarkKind kind, std::size_t chip_qubits, Prng &prng)
{
    requireConfig(chip_qubits >= 3, "benchmarks need at least 3 qubits");
    switch (kind) {
      case BenchmarkKind::VQC:
        return makeVqc(chip_qubits, 4, prng);
      case BenchmarkKind::ISING:
        return makeIsing(chip_qubits, 3);
      case BenchmarkKind::DJ: {
        // Balanced oracle over roughly half of the inputs.
        const std::size_t inputs = chip_qubits - 1;
        unsigned long mask = 0;
        for (std::size_t q = 0; q < inputs; q += 2)
            mask |= 1ul << q;
        return makeDeutschJozsa(chip_qubits, mask);
      }
      case BenchmarkKind::QFT:
        return makeQft(chip_qubits);
      case BenchmarkKind::QKNN:
        return makeQknn((chip_qubits - 1) / 2, prng);
    }
    throw ConfigError("unknown benchmark kind");
}

} // namespace youtiao
