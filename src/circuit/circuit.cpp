#include "circuit/circuit.hpp"

#include <algorithm>
#include <numbers>

#include "common/error.hpp"

namespace youtiao {

const char *
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::H: return "h";
      case GateKind::X: return "x";
      case GateKind::CZ: return "cz";
      case GateKind::CNOT: return "cnot";
      case GateKind::SWAP: return "swap";
      case GateKind::Measure: return "measure";
      case GateKind::Barrier: return "barrier";
    }
    return "?";
}

QuantumCircuit::QuantumCircuit(std::size_t qubit_count, std::string name)
    : qubitCount_(qubit_count), name_(std::move(name))
{}

void
QuantumCircuit::append(const Gate &gate)
{
    if (gate.kind != GateKind::Barrier) {
        requireConfig(gate.qubit0 < qubitCount_,
                      "gate operand out of range");
        if (isTwoQubit(gate.kind)) {
            requireConfig(gate.qubit1 < qubitCount_,
                          "gate operand out of range");
            requireConfig(gate.qubit0 != gate.qubit1,
                          "two-qubit gate needs distinct operands");
        }
    }
    gates_.push_back(gate);
}

void
QuantumCircuit::rx(std::size_t q, double angle)
{
    append(Gate{GateKind::RX, q, 0, angle});
}

void
QuantumCircuit::ry(std::size_t q, double angle)
{
    append(Gate{GateKind::RY, q, 0, angle});
}

void
QuantumCircuit::rz(std::size_t q, double angle)
{
    append(Gate{GateKind::RZ, q, 0, angle});
}

void
QuantumCircuit::h(std::size_t q)
{
    append(Gate{GateKind::H, q, 0, 0.0});
}

void
QuantumCircuit::x(std::size_t q)
{
    append(Gate{GateKind::X, q, 0, std::numbers::pi});
}

void
QuantumCircuit::cz(std::size_t a, std::size_t b)
{
    append(Gate{GateKind::CZ, a, b, 0.0});
}

void
QuantumCircuit::cnot(std::size_t control, std::size_t target)
{
    append(Gate{GateKind::CNOT, control, target, 0.0});
}

void
QuantumCircuit::swap(std::size_t a, std::size_t b)
{
    append(Gate{GateKind::SWAP, a, b, 0.0});
}

void
QuantumCircuit::measure(std::size_t q)
{
    append(Gate{GateKind::Measure, q, 0, 0.0});
}

void
QuantumCircuit::barrier()
{
    append(Gate{GateKind::Barrier, 0, 0, 0.0});
}

std::size_t
QuantumCircuit::twoQubitGateCount() const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [](const Gate &g) { return isTwoQubit(g.kind); }));
}

bool
QuantumCircuit::isBasisOnly() const
{
    return std::all_of(gates_.begin(), gates_.end(),
                       [](const Gate &g) { return isBasisGate(g.kind); });
}

QuantumCircuit
QuantumCircuit::inverse() const
{
    QuantumCircuit out(qubitCount_, name_.empty() ? "" : name_ + "^-1");
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        Gate g = *it;
        requireConfig(g.kind != GateKind::Measure,
                      "measured circuits are not invertible");
        switch (g.kind) {
          case GateKind::RX:
          case GateKind::RY:
          case GateKind::RZ:
            g.angle = -g.angle;
            break;
          default:
            break; // H, X, CZ, CNOT, SWAP, Barrier are self-inverse
        }
        out.append(g);
    }
    return out;
}

namespace {

/** ASAP layer index per gate under qubit-availability constraints only. */
std::vector<std::size_t>
asapLayers(const QuantumCircuit &qc)
{
    std::vector<std::size_t> ready(qc.qubitCount(), 0);
    std::vector<std::size_t> layer_of(qc.gateCount(), 0);
    std::size_t barrier_floor = 0;
    for (std::size_t g = 0; g < qc.gateCount(); ++g) {
        const Gate &gate = qc.gates()[g];
        if (gate.kind == GateKind::Barrier) {
            std::size_t highest = barrier_floor;
            for (std::size_t q = 0; q < qc.qubitCount(); ++q)
                highest = std::max(highest, ready[q]);
            barrier_floor = highest;
            layer_of[g] = highest; // barrier occupies no layer itself
            continue;
        }
        std::size_t at = std::max(barrier_floor, ready[gate.qubit0]);
        if (isTwoQubit(gate.kind))
            at = std::max(at, ready[gate.qubit1]);
        layer_of[g] = at;
        ready[gate.qubit0] = at + 1;
        if (isTwoQubit(gate.kind))
            ready[gate.qubit1] = at + 1;
    }
    return layer_of;
}

} // namespace

std::size_t
QuantumCircuit::depth() const
{
    if (gates_.empty())
        return 0;
    const auto layers = asapLayers(*this);
    std::size_t depth = 0;
    for (std::size_t g = 0; g < gates_.size(); ++g) {
        if (gates_[g].kind == GateKind::Barrier)
            continue;
        depth = std::max(depth, layers[g] + 1);
    }
    return depth;
}

std::size_t
QuantumCircuit::twoQubitDepth() const
{
    if (gates_.empty())
        return 0;
    const auto layers = asapLayers(*this);
    std::vector<bool> has_two_qubit;
    for (std::size_t g = 0; g < gates_.size(); ++g) {
        if (!isTwoQubit(gates_[g].kind))
            continue;
        if (layers[g] >= has_two_qubit.size())
            has_two_qubit.resize(layers[g] + 1, false);
        has_two_qubit[layers[g]] = true;
    }
    return static_cast<std::size_t>(
        std::count(has_two_qubit.begin(), has_two_qubit.end(), true));
}

} // namespace youtiao
