#include "circuit/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace youtiao {

double
gateDurationNs(const Gate &gate, const GateDurations &durations)
{
    switch (gate.kind) {
      case GateKind::RZ:
        return durations.virtualZNs;
      case GateKind::Measure:
        return durations.readoutNs;
      case GateKind::Barrier:
        return 0.0;
      default:
        return isTwoQubit(gate.kind) ? durations.twoQubitNs
                                     : durations.oneQubitNs;
    }
}

std::size_t
Schedule::twoQubitDepth(const QuantumCircuit &qc) const
{
    std::size_t count = 0;
    for (const auto &layer : layers) {
        const bool has_two = std::any_of(
            layer.begin(), layer.end(), [&qc](std::size_t g) {
                return isTwoQubit(qc.gates()[g].kind);
            });
        if (has_two)
            ++count;
    }
    return count;
}

double
Schedule::durationNs(const QuantumCircuit &qc,
                     const GateDurations &durations) const
{
    double total = 0.0;
    for (const auto &layer : layers) {
        double slowest = 0.0;
        for (std::size_t g : layer)
            slowest = std::max(slowest,
                               gateDurationNs(qc.gates()[g], durations));
        total += slowest;
    }
    return total;
}

Schedule
scheduleCircuit(const QuantumCircuit &qc, const LayerConstraint *constraint)
{
    Schedule schedule;
    std::vector<std::vector<Gate>> layer_gates; // for constraint checks
    std::vector<std::size_t> ready(qc.qubitCount(), 0);
    std::size_t barrier_floor = 0;

    for (std::size_t g = 0; g < qc.gateCount(); ++g) {
        const Gate &gate = qc.gates()[g];
        if (gate.kind == GateKind::Barrier) {
            for (std::size_t q = 0; q < qc.qubitCount(); ++q)
                barrier_floor = std::max(barrier_floor, ready[q]);
            continue;
        }
        if (gate.kind == GateKind::RZ)
            continue; // virtual frame update: free and instantaneous

        std::size_t at = std::max(barrier_floor, ready[gate.qubit0]);
        if (isTwoQubit(gate.kind))
            at = std::max(at, ready[gate.qubit1]);
        if (constraint != nullptr) {
            while (at < layer_gates.size() &&
                   !constraint->canCoexist(gate, layer_gates[at]))
                ++at;
        }
        if (at >= schedule.layers.size()) {
            schedule.layers.resize(at + 1);
            layer_gates.resize(at + 1);
        }
        schedule.layers[at].push_back(g);
        layer_gates[at].push_back(gate);
        ready[gate.qubit0] = at + 1;
        if (isTwoQubit(gate.kind))
            ready[gate.qubit1] = at + 1;
    }
    // Trim trailing empty layers (possible when constraints spread gates).
    while (!schedule.layers.empty() && schedule.layers.back().empty())
        schedule.layers.pop_back();
    return schedule;
}

} // namespace youtiao
