#include "routing/grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace youtiao {

RoutingGrid::RoutingGrid(Point min_corner, Point max_corner,
                         const RoutingGridConfig &config)
    : config_(config)
{
    requireConfig(config.cellMm > 0.0, "cell size must be positive");
    requireConfig(max_corner.x >= min_corner.x &&
                      max_corner.y >= min_corner.y,
                  "grid corners are inverted");
    originX_ = min_corner.x - config.marginMm;
    originY_ = min_corner.y - config.marginMm;
    const double span_x =
        max_corner.x - min_corner.x + 2.0 * config.marginMm;
    const double span_y =
        max_corner.y - min_corner.y + 2.0 * config.marginMm;
    width_ = static_cast<std::size_t>(
                 std::ceil(span_x / config.cellMm)) + 1;
    height_ = static_cast<std::size_t>(
                  std::ceil(span_y / config.cellMm)) + 1;
    owner_.assign(width_ * height_, kFree);
}

Cell
RoutingGrid::cellAt(const Point &p) const
{
    const auto clamp_axis = [](double v, std::size_t n) {
        const long raw = std::lround(v);
        return static_cast<std::size_t>(
            std::clamp(raw, 0L, static_cast<long>(n) - 1));
    };
    return Cell{clamp_axis((p.x - originX_) / config_.cellMm, width_),
                clamp_axis((p.y - originY_) / config_.cellMm, height_)};
}

Point
RoutingGrid::pointAt(const Cell &c) const
{
    return Point{originX_ + static_cast<double>(c.x) * config_.cellMm,
                 originY_ + static_cast<double>(c.y) * config_.cellMm};
}

std::int32_t
RoutingGrid::owner(const Cell &c) const
{
    return owner_[index(c)];
}

void
RoutingGrid::setOwner(const Cell &c, std::int32_t owner)
{
    owner_[index(c)] = owner;
}

void
RoutingGrid::blockSquare(const Point &p, double half_mm)
{
    const Cell lo = cellAt(Point{p.x - half_mm, p.y - half_mm});
    const Cell hi = cellAt(Point{p.x + half_mm, p.y + half_mm});
    for (std::size_t y = lo.y; y <= hi.y; ++y) {
        for (std::size_t x = lo.x; x <= hi.x; ++x)
            owner_[y * width_ + x] = kObstacle;
    }
}

void
RoutingGrid::clearSquare(const Point &p, double half_mm)
{
    const Cell lo = cellAt(Point{p.x - half_mm, p.y - half_mm});
    const Cell hi = cellAt(Point{p.x + half_mm, p.y + half_mm});
    for (std::size_t y = lo.y; y <= hi.y; ++y) {
        for (std::size_t x = lo.x; x <= hi.x; ++x) {
            if (owner_[y * width_ + x] == kObstacle)
                owner_[y * width_ + x] = kFree;
        }
    }
}

void
RoutingGrid::blockSquareIfFree(const Point &p, double half_mm)
{
    const Cell lo = cellAt(Point{p.x - half_mm, p.y - half_mm});
    const Cell hi = cellAt(Point{p.x + half_mm, p.y + half_mm});
    for (std::size_t y = lo.y; y <= hi.y; ++y) {
        for (std::size_t x = lo.x; x <= hi.x; ++x) {
            if (owner_[y * width_ + x] == kFree)
                owner_[y * width_ + x] = kObstacle;
        }
    }
}

std::size_t
RoutingGrid::occupiedCellCount() const
{
    return static_cast<std::size_t>(
        std::count_if(owner_.begin(), owner_.end(),
                      [](std::int32_t o) { return o >= 0; }));
}

std::size_t
RoutingGrid::index(const Cell &c) const
{
    requireInternal(c.x < width_ && c.y < height_,
                    "grid cell out of range");
    return c.y * width_ + c.x;
}

} // namespace youtiao
