#include "routing/corridor_router.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"

namespace youtiao {

namespace {

struct SegRef
{
    bool horizontal = false;
    std::uint64_t i = 0;
    std::uint64_t j = 0;
};

SegRef
decode(const CorridorLattice &lattice, std::uint64_t id)
{
    requireConfig(id < lattice.segmentCount(),
                  "corridor segment id out of range");
    SegRef ref;
    if (id < lattice.horizontalCount()) {
        ref.horizontal = true;
        ref.i = id % lattice.tilesX();
        ref.j = id / lattice.tilesX();
    } else {
        const std::uint64_t v = id - lattice.horizontalCount();
        ref.i = v / lattice.tilesY();
        ref.j = v % lattice.tilesY();
    }
    return ref;
}

/** Segments incident to lattice vertex (i, j): up to two horizontal
 *  (left/right) and two vertical (below/above). */
void
segmentsAtVertex(const CorridorLattice &lattice, std::uint64_t i,
                 std::uint64_t j, std::vector<std::uint64_t> &out)
{
    const std::uint64_t tx = lattice.tilesX();
    const std::uint64_t ty = lattice.tilesY();
    if (i > 0)
        out.push_back(j * tx + (i - 1));
    if (i < tx)
        out.push_back(j * tx + i);
    if (j > 0)
        out.push_back(lattice.horizontalCount() + i * ty + (j - 1));
    if (j < ty)
        out.push_back(lattice.horizontalCount() + i * ty + j);
}

double
traversalCost(const CorridorLattice &lattice, std::uint64_t id,
              const std::unordered_map<std::uint64_t, std::uint32_t> &usage,
              const CorridorConfig &config)
{
    double factor = 1.0;
    const auto it = usage.find(id);
    if (it != usage.end() && config.usageNorm > 0.0) {
        factor += config.congestionWeight *
                  static_cast<double>(it->second) / config.usageNorm;
    }
    return lattice.segmentLengthMm(id) * factor;
}

bool
atCapacity(std::uint64_t id,
           const std::unordered_map<std::uint64_t, std::uint32_t> &usage,
           const CorridorConfig &config)
{
    if (config.segmentCapacity == 0)
        return false;
    const auto it = usage.find(id);
    return it != usage.end() && it->second >= config.segmentCapacity;
}

/**
 * Sparse Dijkstra from @p from until @p isGoal. 64-bit segment ids keyed
 * through hash maps: only the explored neighbourhood allocates, so the
 * lattice itself can be arbitrarily large. The priority queue orders by
 * (cost, id), making pop order -- and therefore the parent forest --
 * deterministic regardless of hash-map iteration order.
 */
template <typename Goal>
std::optional<CorridorPath>
searchCorridor(const CorridorLattice &lattice, std::uint64_t from,
               const Goal &isGoal,
               const std::unordered_map<std::uint64_t, std::uint32_t> &usage,
               const CorridorConfig &config)
{
    if (atCapacity(from, usage, config))
        return std::nullopt;

    std::unordered_map<std::uint64_t, double> g;
    std::unordered_map<std::uint64_t, std::uint64_t> parent;
    using Entry = std::pair<double, std::uint64_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;

    g[from] = traversalCost(lattice, from, usage, config);
    open.emplace(g[from], from);
    std::vector<std::uint64_t> adjacent;
    std::size_t expanded = 0;
    std::optional<std::uint64_t> goal;
    while (!open.empty()) {
        const auto [cost, id] = open.top();
        open.pop();
        const auto gi = g.find(id);
        if (gi == g.end() || cost > gi->second)
            continue; // stale queue entry
        ++expanded;
        if ((expanded & 0xFFF) == 0)
            cancel::poll("corridor");
        if (isGoal(id)) {
            goal = id;
            break;
        }
        adjacent.clear();
        const SegRef ref = decode(lattice, id);
        if (ref.horizontal) {
            segmentsAtVertex(lattice, ref.i, ref.j, adjacent);
            segmentsAtVertex(lattice, ref.i + 1, ref.j, adjacent);
        } else {
            segmentsAtVertex(lattice, ref.i, ref.j, adjacent);
            segmentsAtVertex(lattice, ref.i, ref.j + 1, adjacent);
        }
        for (std::uint64_t next : adjacent) {
            if (next == id || atCapacity(next, usage, config))
                continue;
            const double cand =
                cost + traversalCost(lattice, next, usage, config);
            const auto it = g.find(next);
            if (it == g.end() || cand < it->second) {
                g[next] = cand;
                parent[next] = id;
                open.emplace(cand, next);
            }
        }
    }
    metrics::count("corridor.segments_expanded", expanded);
    if (!goal.has_value())
        return std::nullopt;

    CorridorPath path;
    std::uint64_t at = *goal;
    while (true) {
        path.segments.push_back(at);
        path.lengthMm += lattice.segmentLengthMm(at);
        const auto it = parent.find(at);
        if (it == parent.end())
            break;
        at = it->second;
    }
    std::reverse(path.segments.begin(), path.segments.end());
    return path;
}

} // namespace

double
CorridorLattice::segmentLengthMm(std::uint64_t id) const
{
    const SegRef ref = decode(*this, id);
    if (ref.horizontal)
        return xCutsMm[ref.i + 1] - xCutsMm[ref.i];
    return yCutsMm[ref.j + 1] - yCutsMm[ref.j];
}

Point
CorridorLattice::segmentMidpoint(std::uint64_t id) const
{
    const SegRef ref = decode(*this, id);
    if (ref.horizontal)
        return Point{0.5 * (xCutsMm[ref.i] + xCutsMm[ref.i + 1]),
                     yCutsMm[ref.j]};
    return Point{xCutsMm[ref.i],
                 0.5 * (yCutsMm[ref.j] + yCutsMm[ref.j + 1])};
}

std::vector<std::uint64_t>
CorridorLattice::adjacentSegments(std::uint64_t id) const
{
    std::vector<std::uint64_t> out;
    const SegRef ref = decode(*this, id);
    if (ref.horizontal) {
        segmentsAtVertex(*this, ref.i, ref.j, out);
        segmentsAtVertex(*this, ref.i + 1, ref.j, out);
    } else {
        segmentsAtVertex(*this, ref.i, ref.j, out);
        segmentsAtVertex(*this, ref.i, ref.j + 1, out);
    }
    out.erase(std::remove(out.begin(), out.end(), id), out.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
CorridorLattice::isBoundary(std::uint64_t id) const
{
    const SegRef ref = decode(*this, id);
    if (ref.horizontal)
        return ref.j == 0 || ref.j == tilesY();
    return ref.i == 0 || ref.i == tilesX();
}

std::uint64_t
CorridorLattice::entrySegmentForTile(std::uint64_t ix, std::uint64_t iy,
                                     const Point &p) const
{
    requireConfig(ix < tilesX() && iy < tilesY(),
                  "tile index outside the corridor lattice");
    const std::uint64_t sides[4] = {
        iy * tilesX() + ix,                         // south
        (iy + 1) * tilesX() + ix,                   // north
        horizontalCount() + ix * tilesY() + iy,     // west
        horizontalCount() + (ix + 1) * tilesY() + iy // east
    };
    std::uint64_t best = sides[0];
    double best_d = std::numeric_limits<double>::infinity();
    for (std::uint64_t id : sides) {
        const double d = distance(segmentMidpoint(id), p);
        if (d < best_d || (d == best_d && id < best)) {
            best_d = d;
            best = id;
        }
    }
    return best;
}

CorridorLattice
makeCorridorLattice(std::vector<double> x_cuts_mm,
                    std::vector<double> y_cuts_mm)
{
    requireConfig(x_cuts_mm.size() >= 2 && y_cuts_mm.size() >= 2,
                  "corridor lattice needs at least one tile per axis");
    requireConfig(std::is_sorted(x_cuts_mm.begin(), x_cuts_mm.end()) &&
                      std::is_sorted(y_cuts_mm.begin(), y_cuts_mm.end()),
                  "corridor cuts must be ascending");
    CorridorLattice lattice;
    lattice.xCutsMm = std::move(x_cuts_mm);
    lattice.yCutsMm = std::move(y_cuts_mm);
    return lattice;
}

CorridorResult
routeCorridors(const CorridorLattice &lattice,
               const std::vector<std::uint64_t> &entries,
               const CorridorConfig &config)
{
    const metrics::ScopedTimer timer("corridor.route");
    CorridorResult result;
    result.paths.resize(entries.size());
    const auto boundary = [&lattice](std::uint64_t id) {
        return lattice.isBoundary(id);
    };
    for (std::size_t n = 0; n < entries.size(); ++n) {
        auto path = searchCorridor(lattice, entries[n], boundary,
                                   result.usage, config);
        if (!path.has_value()) {
            ++result.failedNets;
            metrics::count("corridor.failed_nets");
            continue;
        }
        for (std::uint64_t id : path->segments) {
            const std::uint32_t u = ++result.usage[id];
            result.maxSegmentUsage =
                std::max<std::size_t>(result.maxSegmentUsage, u);
        }
        result.paths[n] = std::move(*path);
    }
    result.maxCorridorWidthMm =
        static_cast<double>(result.maxSegmentUsage) * config.linePitchMm;
    metrics::count("corridor.nets_routed",
                   entries.size() - result.failedNets);
    return result;
}

std::optional<CorridorPath>
routeCorridorPath(const CorridorLattice &lattice, std::uint64_t from,
                  std::uint64_t to,
                  const std::unordered_map<std::uint64_t, std::uint32_t>
                      &usage,
                  const CorridorConfig &config)
{
    requireConfig(to < lattice.segmentCount(),
                  "corridor segment id out of range");
    return searchCorridor(
        lattice, from, [to](std::uint64_t id) { return id == to; }, usage,
        config);
}

CorridorDrcReport
checkCorridorDrc(const CorridorLattice &lattice,
                 const CorridorResult &result,
                 const std::vector<std::uint64_t> &entries,
                 const CorridorConfig &config)
{
    CorridorDrcReport report;
    const auto fail = [&report](std::string what) {
        report.clean = false;
        report.violations.push_back(std::move(what));
    };
    if (result.paths.size() != entries.size())
        fail("path count does not match net count");

    std::unordered_map<std::uint64_t, std::uint32_t> recount;
    const std::size_t nets =
        std::min(result.paths.size(), entries.size());
    for (std::size_t n = 0; n < nets; ++n) {
        const CorridorPath &path = result.paths[n];
        const std::string net = "net " + std::to_string(n);
        if (path.segments.empty()) {
            fail(net + ": unrouted");
            continue;
        }
        if (path.segments.front() != entries[n])
            fail(net + ": does not start at its entry segment");
        for (std::size_t k = 0; k + 1 < path.segments.size(); ++k) {
            const auto adj =
                lattice.adjacentSegments(path.segments[k]);
            if (std::find(adj.begin(), adj.end(),
                          path.segments[k + 1]) == adj.end()) {
                fail(net + ": leaves the corridor lattice between hops " +
                     std::to_string(k) + " and " + std::to_string(k + 1));
            }
        }
        if (!lattice.isBoundary(path.segments.back()))
            fail(net + ": ends inside the chip, not on the boundary");
        for (std::uint64_t id : path.segments) {
            if (id >= lattice.segmentCount()) {
                fail(net + ": references an invalid segment id");
                continue;
            }
            ++recount[id];
        }
    }
    if (recount != result.usage)
        fail("recorded segment usage does not match the routed paths");
    if (config.segmentCapacity > 0) {
        for (const auto &[id, u] : recount) {
            if (u > config.segmentCapacity) {
                fail("segment " + std::to_string(id) + " carries " +
                     std::to_string(u) + " nets over capacity " +
                     std::to_string(config.segmentCapacity));
            }
        }
    }
    std::sort(report.violations.begin(), report.violations.end());
    return report;
}

} // namespace youtiao
