/**
 * @file
 * Design-rule check for routed chips.
 *
 * With one grid cell per line pitch, exclusivity of cell ownership already
 * implies the spacing rule; the checks here verify the invariants the
 * router promises: single ownership per cell (by construction of the
 * grid), per-net connectivity, and that no net cell sits inside another
 * device's keep-out.
 */

#ifndef YOUTIAO_ROUTING_DRC_HPP
#define YOUTIAO_ROUTING_DRC_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "routing/astar_router.hpp"
#include "routing/grid.hpp"

namespace youtiao {

/** Result of a DRC run. */
struct DrcReport
{
    bool clean = true;
    std::vector<std::string> violations;
};

/**
 * Check that every net's claimed cells form one 4-connected component,
 * where airbridge @p crossovers let the crossing net traverse the bridged
 * cell. @p net_count bounds the net ids present in the grid.
 */
DrcReport checkRoutingDrc(const RoutingGrid &grid, std::size_t net_count,
                          const std::vector<Crossover> &crossovers = {});

} // namespace youtiao

#endif // YOUTIAO_ROUTING_DRC_HPP
