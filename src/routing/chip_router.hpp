/**
 * @file
 * Whole-chip control-line routing (paper Section 5.3, chip level).
 *
 * Places one interface per net on the chip perimeter (0.5 mm pads), then
 * routes every net -- XY FDM trunks daisy-chaining their qubit group, Z
 * TDM lines fanning out to their DEMUX group, readout feedlines -- with
 * the A* maze router under no-crossing / pitch-spacing rules. Reports
 * total wire length and routing area (length x 30 um pitch).
 */

#ifndef YOUTIAO_ROUTING_CHIP_ROUTER_HPP
#define YOUTIAO_ROUTING_CHIP_ROUTER_HPP

#include <optional>
#include <vector>

#include "chip/topology.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/tdm.hpp"
#include "routing/astar_router.hpp"
#include "routing/grid.hpp"

namespace youtiao {

/** A multi-terminal net to be routed from one perimeter interface. */
struct NetSpec
{
    std::vector<Point> terminals;
};

/** Router configuration. */
struct ChipRoutingConfig
{
    RoutingGridConfig grid;
    /** Interface pad width on the perimeter (mm); paper: ~0.5 mm. */
    double interfaceSpacingMm = 0.5;
    /**
     * Rip-up-and-retry passes (>= 1, validated by routeChip). Pass 1 is
     * the initial route; each later pass re-routes everything with the
     * previous pass's failed nets handled first. Retries consumed are
     * reported in ChipRoutingResult::retryPasses and counted by the
     * `routing.retry_passes` metric.
     */
    std::size_t maxRetryPasses = 4;
    /**
     * Promote failed nets to the front of the ordering between passes
     * (deterministic stable reorder). Off = retry with the original
     * shortest-first order, useful for ablating the reorder heuristic.
     */
    bool failedNetFirstReorder = true;
    /**
     * Extra keep-out squares blocked before any net routes (packaging
     * flaws; fed from ChipDefects::blockedRoutingCells). Wires detour
     * around them or fail into the retry/fallback ladder.
     */
    std::vector<Point> blockedCells;
    /** Halfwidth of each blocked square (mm). */
    double blockedHalfWidthMm = 0.1;
    /** Per-path A* cost knobs (defaults reproduce historic routes). */
    AstarConfig astar;
};

/** Aggregate routing metrics. */
struct ChipRoutingResult
{
    std::size_t netCount = 0;
    /** Terminal connections the router could not complete. */
    std::size_t failedConnections = 0;
    /** Indices of nets with at least one failed connection (ascending). */
    std::vector<std::size_t> failedNets;
    /** Routing passes consumed (1 = first pass routed everything). */
    std::size_t retryPasses = 0;
    /** Total new metal length (mm). */
    double totalLengthMm = 0.0;
    /** Routing area: length x line pitch (mm^2). */
    double routingAreaMm2 = 0.0;
    /** Perimeter interfaces consumed (= nets). */
    std::size_t interfaceCount = 0;
    /** Interface pad claimed by each net, indexed by net (the
     *  hierarchical router anchors corridor entry on these). Empty for
     *  nets that never claimed a slot. */
    std::vector<Point> interfaces;
    /** Airbridge crossovers used (cell + the net bridged over). */
    std::vector<Crossover> crossovers;
    /** Final occupancy grid (for DRC and inspection). */
    std::optional<RoutingGrid> grid;
};

/**
 * Build the analog net list for a wiring plan: one net per FDM XY line,
 * one per TDM Z group, one per readout feedline group. Pin points sit
 * just outside the device keep-out pads (XY west, Z east, readout north,
 * coupler north), so nets bond at pad edges and never cross pads.
 */
std::vector<NetSpec> buildWiringNets(const ChipTopology &chip,
                                     const FdmPlan &xy_plan,
                                     const TdmPlan &z_plan,
                                     const FdmPlan &readout_plan,
                                     const ChipRoutingConfig &config = {});

/** Route all nets on @p chip. */
ChipRoutingResult routeChip(const ChipTopology &chip,
                            const std::vector<NetSpec> &nets,
                            const ChipRoutingConfig &config = {});

/** routeChip plus the degradation ladder's last routing resort. */
struct RoutedWiring
{
    /** Final routing (after the fallback re-route when one happened). */
    ChipRoutingResult result;
    /** Original net indices split into dedicated per-terminal lines. */
    std::vector<std::size_t> fallbackNets;
    /** Dedicated lines created by the fallback (= extra interfaces). */
    std::size_t dedicatedNetFallbacks = 0;
};

/**
 * Route @p nets; if nets still fail after routeChip's retry passes,
 * split each failed multi-terminal net into one dedicated net per
 * terminal (every terminal gets its own perimeter interface -- the
 * no-multiplexing wiring the trunk was supposed to replace) and route
 * the expanded net list once more. Deterministic; never throws beyond
 * routeChip's own config validation.
 */
RoutedWiring routeChipWithFallback(const ChipTopology &chip,
                                   const std::vector<NetSpec> &nets,
                                   const ChipRoutingConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_ROUTING_CHIP_ROUTER_HPP
