/**
 * @file
 * Whole-chip control-line routing (paper Section 5.3, chip level).
 *
 * Places one interface per net on the chip perimeter (0.5 mm pads), then
 * routes every net -- XY FDM trunks daisy-chaining their qubit group, Z
 * TDM lines fanning out to their DEMUX group, readout feedlines -- with
 * the A* maze router under no-crossing / pitch-spacing rules. Reports
 * total wire length and routing area (length x 30 um pitch).
 */

#ifndef YOUTIAO_ROUTING_CHIP_ROUTER_HPP
#define YOUTIAO_ROUTING_CHIP_ROUTER_HPP

#include <optional>
#include <vector>

#include "chip/topology.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/tdm.hpp"
#include "routing/astar_router.hpp"
#include "routing/grid.hpp"

namespace youtiao {

/** A multi-terminal net to be routed from one perimeter interface. */
struct NetSpec
{
    std::vector<Point> terminals;
};

/** Router configuration. */
struct ChipRoutingConfig
{
    RoutingGridConfig grid;
    /** Interface pad width on the perimeter (mm); paper: ~0.5 mm. */
    double interfaceSpacingMm = 0.5;
};

/** Aggregate routing metrics. */
struct ChipRoutingResult
{
    std::size_t netCount = 0;
    /** Terminal connections the router could not complete. */
    std::size_t failedConnections = 0;
    /** Total new metal length (mm). */
    double totalLengthMm = 0.0;
    /** Routing area: length x line pitch (mm^2). */
    double routingAreaMm2 = 0.0;
    /** Perimeter interfaces consumed (= nets). */
    std::size_t interfaceCount = 0;
    /** Airbridge crossovers used (cell + the net bridged over). */
    std::vector<Crossover> crossovers;
    /** Final occupancy grid (for DRC and inspection). */
    std::optional<RoutingGrid> grid;
};

/**
 * Build the analog net list for a wiring plan: one net per FDM XY line,
 * one per TDM Z group, one per readout feedline group. Pin points sit
 * just outside the device keep-out pads (XY west, Z east, readout north,
 * coupler north), so nets bond at pad edges and never cross pads.
 */
std::vector<NetSpec> buildWiringNets(const ChipTopology &chip,
                                     const FdmPlan &xy_plan,
                                     const TdmPlan &z_plan,
                                     const FdmPlan &readout_plan,
                                     const ChipRoutingConfig &config = {});

/** Route all nets on @p chip. */
ChipRoutingResult routeChip(const ChipTopology &chip,
                            const std::vector<NetSpec> &nets,
                            const ChipRoutingConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_ROUTING_CHIP_ROUTER_HPP
