#include "routing/chip_router.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "routing/astar_router.hpp"

namespace youtiao {

namespace {

/** Centroid of a net's terminals. */
Point
centroid(const NetSpec &net)
{
    Point c{0.0, 0.0};
    for (const Point &t : net.terminals) {
        c.x += t.x;
        c.y += t.y;
    }
    const auto n = static_cast<double>(net.terminals.size());
    return Point{c.x / n, c.y / n};
}

/**
 * Perimeter interface slots: points every @p spacing mm along the grid
 * boundary rectangle (one cell inside the edge).
 */
std::vector<Point>
perimeterSlots(const Point &lo, const Point &hi, double spacing)
{
    std::vector<Point> slots;
    const double w = hi.x - lo.x;
    const double h = hi.y - lo.y;
    for (double x = lo.x; x <= hi.x; x += spacing) {
        slots.push_back(Point{x, lo.y});
        slots.push_back(Point{x, hi.y});
    }
    for (double y = lo.y + spacing; y < hi.y; y += spacing) {
        slots.push_back(Point{lo.x, y});
        slots.push_back(Point{hi.x, y});
    }
    (void)w;
    (void)h;
    return slots;
}

} // namespace

namespace {

/**
 * Place a device pin just outside its keep-out pad on the first port
 * (from @p preferred directions) that stays clear of every other
 * device's pad and every previously placed pin. On dense lattices
 * (heavy squares, midpoint couplers) only some ports are open.
 */
Point
pickPin(const ChipTopology &chip, std::size_t device,
        const std::array<Point, 4> &preferred, double offset,
        std::vector<Point> &placed_pins, const ChipRoutingConfig &config)
{
    const Point center = chip.devicePosition(device);
    const double cell = config.grid.cellMm;
    auto clear = [&](const Point &pin) {
        for (std::size_t d = 0; d < chip.deviceCount(); ++d) {
            if (d == device)
                continue;
            const double pad =
                (chip.deviceKind(d) == DeviceKind::Qubit ? 1.0 : 0.5) *
                config.grid.devicePadMm;
            const Point o = chip.devicePosition(d);
            if (std::abs(pin.x - o.x) <= pad + 2.0 * cell &&
                std::abs(pin.y - o.y) <= pad + 2.0 * cell)
                return false;
        }
        for (const Point &other : placed_pins) {
            if (std::abs(pin.x - other.x) < 2.0 * cell &&
                std::abs(pin.y - other.y) < 2.0 * cell)
                return false;
        }
        return true;
    };
    for (const Point &dir : preferred) {
        const Point pin{center.x + dir.x * offset,
                        center.y + dir.y * offset};
        if (clear(pin)) {
            placed_pins.push_back(pin);
            return pin;
        }
    }
    // Every port crowded: fall back to the first preference; the router's
    // retry loop gets to deal with it.
    const Point pin{center.x + preferred[0].x * offset,
                    center.y + preferred[0].y * offset};
    placed_pins.push_back(pin);
    return pin;
}

constexpr Point kEast{1.0, 0.0};
constexpr Point kWest{-1.0, 0.0};
constexpr Point kNorth{0.0, 1.0};
constexpr Point kSouth{0.0, -1.0};

} // namespace

std::vector<NetSpec>
buildWiringNets(const ChipTopology &chip, const FdmPlan &xy_plan,
                const TdmPlan &z_plan, const FdmPlan &readout_plan,
                const ChipRoutingConfig &config)
{
    const metrics::ScopedTimer timer("routing.build_nets");
    // Each control plane bonds to the device at its own port just outside
    // the keep-out pad (XY prefers west, Z east, readout north), falling
    // back to other ports on crowded lattices, so no wire ever needs to
    // cross a pad and pins never collide.
    const double qubit_pin =
        config.grid.devicePadMm + 2.0 * config.grid.cellMm;
    const double coupler_pin =
        0.5 * config.grid.devicePadMm + 2.0 * config.grid.cellMm;
    std::vector<Point> placed;
    std::vector<NetSpec> nets;
    for (const auto &line : xy_plan.lines) {
        NetSpec net;
        for (std::size_t q : line)
            net.terminals.push_back(
                pickPin(chip, q, {kWest, kSouth, kEast, kNorth},
                        qubit_pin, placed, config));
        nets.push_back(std::move(net));
    }
    for (const TdmGroup &group : z_plan.groups) {
        NetSpec net;
        for (std::size_t d : group.devices) {
            const bool qubit = chip.deviceKind(d) == DeviceKind::Qubit;
            net.terminals.push_back(
                pickPin(chip, d,
                        qubit ? std::array<Point, 4>{kEast, kNorth, kWest,
                                                     kSouth}
                              : std::array<Point, 4>{kNorth, kSouth,
                                                     kEast, kWest},
                        qubit ? qubit_pin : coupler_pin, placed, config));
        }
        nets.push_back(std::move(net));
    }
    for (const auto &line : readout_plan.lines) {
        NetSpec net;
        for (std::size_t q : line)
            net.terminals.push_back(
                pickPin(chip, q, {kNorth, kSouth, kWest, kEast},
                        qubit_pin, placed, config));
        nets.push_back(std::move(net));
    }
    return nets;
}

namespace {

ChipRoutingResult
routeOnce(const ChipTopology &chip, const std::vector<NetSpec> &nets,
          const ChipRoutingConfig &config,
          const std::vector<std::size_t> &order,
          std::vector<bool> &net_failed, SearchArena &arena)
{
    requireConfig(!nets.empty(), "no nets to route");
    // Device-extent bounding box.
    Point lo{std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()};
    Point hi{-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()};
    auto fold = [&](const Point &p) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
    };
    for (const QubitInfo &q : chip.qubits())
        fold(q.position);
    for (const CouplerInfo &c : chip.couplers())
        fold(c.position);
    for (const NetSpec &net : nets)
        for (const Point &t : net.terminals)
            fold(t);

    ChipRoutingResult result;
    result.netCount = nets.size();
    RoutingGrid grid(lo, hi, config.grid);

    // Devices are keep-out pads until their own net opens pin windows.
    for (const QubitInfo &q : chip.qubits())
        grid.blockSquare(q.position, config.grid.devicePadMm);
    for (const CouplerInfo &c : chip.couplers())
        grid.blockSquare(c.position, config.grid.devicePadMm * 0.5);
    // Defect keep-outs (packaging flaws) are permanent obstacles.
    for (const Point &p : config.blockedCells)
        grid.blockSquare(p, config.blockedHalfWidthMm);

    // Interface slots along the expanded grid border. Dense chips shrink
    // the pad pitch so the perimeter can host one interface per net
    // (never below two grid cells).
    const double m = config.grid.marginMm * 0.5;
    const double perim = 2.0 * (hi.x - lo.x + hi.y - lo.y + 4.0 * m);
    double spacing = config.interfaceSpacingMm;
    const double needed =
        0.9 * perim / static_cast<double>(nets.size());
    spacing = std::max(2.0 * config.grid.cellMm,
                       std::min(spacing, needed));
    std::vector<Point> slots = perimeterSlots(
        Point{lo.x - m, lo.y - m}, Point{hi.x + m, hi.y + m}, spacing);
    std::vector<bool> slot_used(slots.size(), false);
    requireConfig(slots.size() >= nets.size(),
                  "perimeter cannot host one interface per net");
    // Reserve every slot and pin cell so wires cannot squat on them.
    for (const Point &slot : slots)
        grid.blockSquare(slot, 0.5 * config.grid.cellMm);
    for (const NetSpec &net : nets)
        for (const Point &t : net.terminals)
            grid.blockSquare(t, 0.5 * config.grid.cellMm);

    net_failed.assign(nets.size(), false);
    for (std::size_t net_index : order) {
        cancel::poll("routing.net");
        const NetSpec &net = nets[net_index];
        requireConfig(!net.terminals.empty(), "net without terminals");
        const auto net_id = static_cast<std::int32_t>(net_index);
        const trace::TraceSpan net_span("routing.net", "routing");
        const auto net_start = std::chrono::steady_clock::now();

        // Claim the perimeter slot nearest the net centroid.
        const Point c = centroid(net);
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_slot = slots.size();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            if (slot_used[s])
                continue;
            const double d = distance(slots[s], c);
            if (d < best) {
                best = d;
                best_slot = s;
            }
        }
        requireInternal(best_slot < slots.size(), "out of interface slots");
        slot_used[best_slot] = true;
        ++result.interfaceCount;
        if (result.interfaces.empty())
            result.interfaces.assign(nets.size(), Point{lo.x, lo.y});
        result.interfaces[net_index] = slots[best_slot];
        grid.clearSquare(slots[best_slot], 0.5 * config.grid.cellMm);

        // Release this net's reserved pin cells, then route the
        // terminals as a greedy nearest-neighbour chain from the
        // interface so the trunk sweeps instead of zig-zagging.
        for (const Point &t : net.terminals)
            grid.clearSquare(t, 0.5 * config.grid.cellMm);
        std::vector<Point> tour;
        {
            std::vector<Point> left = net.terminals;
            Point at = slots[best_slot];
            while (!left.empty()) {
                std::size_t pick = 0;
                for (std::size_t k = 1; k < left.size(); ++k) {
                    if (distance(left[k], at) < distance(left[pick], at))
                        pick = k;
                }
                at = left[pick];
                tour.push_back(at);
                left.erase(left.begin() + static_cast<long>(pick));
            }
        }
        const Cell iface = grid.cellAt(slots[best_slot]);
        grid.setOwner(iface, net_id);
        Cell anchor = iface;
        for (const Point &t : tour) {
            if (fault::site("routing.net")) {
                // Injected routing failure: this terminal connection is
                // unroutable, exactly as if A* had exhausted the grid.
                ++result.failedConnections;
                net_failed[net_index] = true;
                continue;
            }
            const Cell target = grid.cellAt(t);
            const auto path = routeAstar(grid, anchor, target, net_id,
                                         arena, config.astar);
            if (!path.has_value()) {
                ++result.failedConnections;
                net_failed[net_index] = true;
                continue;
            }
            for (const Crossover &x : path->crossovers) {
                // Trunk reuse can re-cross the same bridge; record each
                // physical bridge once.
                const bool dup = std::any_of(
                    result.crossovers.begin(), result.crossovers.end(),
                    [&x](const Crossover &seen) {
                        return seen.cell == x.cell &&
                               seen.byNet == x.byNet;
                    });
                if (!dup)
                    result.crossovers.push_back(x);
            }
            result.totalLengthMm +=
                static_cast<double>(path->newCells) * grid.cellMm();
        }
        if (net_failed[net_index]) {
            trace::instant("routing.net_failed", "routing");
            log::debug("net failed to route",
                       {{"net", static_cast<std::uint64_t>(net_index)},
                        {"terminals", net.terminals.size()}});
        }
        metrics::observe(
            "routing.net_seconds",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - net_start)
                .count());
    }
    result.routingAreaMm2 = result.totalLengthMm * config.grid.cellMm;
    result.grid = std::move(grid);
    return result;
}

} // namespace

ChipRoutingResult
routeChip(const ChipTopology &chip, const std::vector<NetSpec> &nets,
          const ChipRoutingConfig &config)
{
    const metrics::ScopedTimer timer("routing.route_chip");
    const trace::TraceSpan span("routing.route_chip", "routing");
    // Short nets route first: pin stubs claim their pad alleys before the
    // long trunks (which have many detour options) weave around. When a
    // net still fails, rip everything up and retry with the failed nets
    // promoted to the front of the order.
    std::vector<std::size_t> order(nets.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&nets](std::size_t a, std::size_t b) {
                         return nets[a].terminals.size() <
                                nets[b].terminals.size();
                     });

    requireConfig(config.maxRetryPasses >= 1,
                  "ChipRoutingConfig::maxRetryPasses must be >= 1");
    std::vector<bool> net_failed;
    std::vector<bool> best_failed;
    ChipRoutingResult best;
    bool have_best = false;
    std::size_t passes_used = 0;
    // One arena serves every A* call across all nets and retry attempts.
    SearchArena arena;
    for (std::size_t attempt = 0; attempt < config.maxRetryPasses;
         ++attempt) {
        cancel::poll("routing.pass");
        metrics::count("routing.attempts");
        if (attempt > 0)
            metrics::count("routing.retry_passes");
        const trace::TraceSpan attempt_span("routing.attempt", "routing");
        ChipRoutingResult result =
            routeOnce(chip, nets, config, order, net_failed, arena);
        passes_used = attempt + 1;
        if (!have_best ||
            result.failedConnections < best.failedConnections) {
            best = std::move(result);
            best_failed = net_failed;
            have_best = true;
        }
        if (best.failedConnections == 0)
            break;
        if (config.failedNetFirstReorder) {
            std::stable_sort(order.begin(), order.end(),
                             [&net_failed](std::size_t a, std::size_t b) {
                                 return net_failed[a] && !net_failed[b];
                             });
        }
    }
    best.retryPasses = passes_used;
    for (std::size_t i = 0; i < best_failed.size(); ++i)
        if (best_failed[i])
            best.failedNets.push_back(i);
    metrics::count("routing.nets_routed", best.netCount);
    metrics::count("routing.failed_connections", best.failedConnections);
    metrics::count("routing.crossovers", best.crossovers.size());
    log::info("chip routing done",
              {{"nets", best.netCount},
               {"failed", best.failedConnections},
               {"crossovers", best.crossovers.size()},
               {"length_mm", best.totalLengthMm}});
    return best;
}

RoutedWiring
routeChipWithFallback(const ChipTopology &chip,
                      const std::vector<NetSpec> &nets,
                      const ChipRoutingConfig &config)
{
    RoutedWiring routed;
    routed.result = routeChip(chip, nets, config);
    if (routed.result.failedNets.empty())
        return routed;

    // Last rung of the ladder: every net that survived all retry passes
    // with failures loses its trunk and wires each terminal on its own
    // dedicated line. Dedicated stubs are short and route first under
    // the shortest-net-first ordering, so the expanded list is strictly
    // easier than the one that failed.
    routed.fallbackNets = routed.result.failedNets;
    std::vector<bool> split(nets.size(), false);
    for (std::size_t i : routed.fallbackNets)
        split[i] = true;
    std::vector<NetSpec> expanded;
    expanded.reserve(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
        if (!split[i]) {
            expanded.push_back(nets[i]);
            continue;
        }
        for (const Point &t : nets[i].terminals) {
            NetSpec dedicated;
            dedicated.terminals.push_back(t);
            expanded.push_back(std::move(dedicated));
            ++routed.dedicatedNetFallbacks;
        }
    }
    metrics::count("routing.dedicated_net_fallbacks",
                   routed.dedicatedNetFallbacks);
    log::warn("routing fallback: failed nets split into dedicated lines",
              {{"failed_nets", routed.fallbackNets.size()},
               {"dedicated_lines", routed.dedicatedNetFallbacks}});
    routed.result = routeChip(chip, expanded, config);
    return routed;
}

} // namespace youtiao
