/**
 * @file
 * A* maze router over the routing grid.
 *
 * Finds shortest 4-connected paths between net terminals. Cells already
 * owned by the same net are traversable at near-zero cost, so sequential
 * terminal routing approximates a Steiner tree (trunk reuse) -- exactly
 * how a shared FDM line daisy-chains its group.
 *
 * Cells owned by other nets can be crossed perpendicularly through an
 * airbridge crossover (standard practice on superconducting chips) at a
 * high cost: the search state tracks the incoming direction, and while on
 * foreign metal only straight continuation is allowed. Bridge cells keep
 * their original owner; the crossing is reported, not claimed.
 */

#ifndef YOUTIAO_ROUTING_ASTAR_ROUTER_HPP
#define YOUTIAO_ROUTING_ASTAR_ROUTER_HPP

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "routing/grid.hpp"

namespace youtiao {

/** An airbridge crossover: net @p byNet hops over @p overNet at @p cell. */
struct Crossover
{
    Cell cell;
    std::int32_t byNet = 0;
    std::int32_t overNet = 0;
};

/** One routed path (sequence of adjacent cells, endpoints inclusive). */
struct RoutedPath
{
    std::vector<Cell> cells;
    /** Number of newly claimed cells (excludes reuse and bridges). */
    std::size_t newCells = 0;
    /** Airbridge crossovers used by this path. */
    std::vector<Crossover> crossovers;
};

/** Router cost knobs. */
struct AstarConfig
{
    /** Cost of one airbridge crossover cell (>> 1 discourages them). */
    double bridgeCost = 25.0;
    /** Extra cost for new metal adjacent to an obstacle (keeps pad
     *  alleys open for later pins). */
    double crowdingPenalty = 0.25;
    /**
     * Manhattan-distance multiplier of the A* heuristic. The default
     * stays below the cheapest per-step cost (same-net reuse, 0.02), so
     * the search is admissible even along an existing trunk and paths
     * are globally optimal -- at near-Dijkstra expansion cost. Larger
     * weights (up to ~1.0, the new-metal step cost) make the search
     * goal-directed and orders of magnitude faster; paths may then
     * under-reuse trunks but remain valid routes. The hierarchical tile
     * router runs at 1.0; the flat path keeps the default so existing
     * results stay bit-identical.
     */
    double heuristicWeight = 0.01;
};

/**
 * Largest grid cell count (width * height) routeAstar can search. The
 * search state packs (cell, incoming direction) into a std::uint32_t
 * index, four states per cell, with the maximum value reserved as the
 * no-parent sentinel.
 */
std::size_t astarMaxCells();

/**
 * Throw ConfigError unless a @p width x @p height grid fits the A*
 * state index (see astarMaxCells()). routeAstar calls this itself;
 * exposed so callers can validate grid dimensions up front.
 */
void requireAstarIndexable(std::size_t width, std::size_t height);

/**
 * Reusable A* working memory: g-cost, parent and closed-set arrays of one
 * state per (cell, direction), kept alive across searches. begin() makes
 * every entry logically stale by bumping a generation counter instead of
 * refilling the arrays, so per-search setup is O(1) amortized — the
 * arrays are touched only where the search actually expands. A fresh
 * arena per call reproduces the original allocate-and-fill behaviour
 * exactly; reuse across calls is bit-identical because stale entries read
 * back as the old fill values (g = +inf, not closed).
 */
class SearchArena
{
  public:
    static constexpr std::uint32_t kNoParent =
        std::numeric_limits<std::uint32_t>::max();

    /** Invalidate all state for a new search over @p state_count states. */
    void begin(std::size_t state_count)
    {
        if (state_count > g_.size()) {
            g_.resize(state_count);
            parent_.resize(state_count);
            stamp_.assign(state_count, 0);
            closedStamp_.assign(state_count, 0);
            generation_ = 1;
            return;
        }
        if (++generation_ == 0) { // generation wrapped: hard reset
            stamp_.assign(stamp_.size(), 0);
            closedStamp_.assign(closedStamp_.size(), 0);
            generation_ = 1;
        }
    }

    double g(std::size_t s) const
    {
        return stamp_[s] == generation_
                   ? g_[s]
                   : std::numeric_limits<double>::infinity();
    }

    /** Record the best-known cost and predecessor of state @p s. */
    void relax(std::size_t s, double g, std::uint32_t parent)
    {
        stamp_[s] = generation_;
        g_[s] = g;
        parent_[s] = parent;
    }

    bool closed(std::size_t s) const
    {
        return closedStamp_[s] == generation_;
    }
    void close(std::size_t s) { closedStamp_[s] = generation_; }

    /**
     * Predecessor of @p s; valid only for states relaxed this search
     * (path reconstruction walks exactly those).
     */
    std::uint32_t parent(std::size_t s) const { return parent_[s]; }

    /** States the arena can hold without regrowing (diagnostic). */
    std::size_t capacity() const { return g_.size(); }

    /** Bytes of working memory currently held (diagnostic; the
     *  hierarchical router budgets per-tile arenas against this). */
    std::size_t memoryBytes() const
    {
        return g_.size() * (sizeof(double) + 3 * sizeof(std::uint32_t));
    }

  private:
    std::vector<double> g_;
    std::vector<std::uint32_t> parent_;
    /** Generation when g_/parent_ at a state were last written. */
    std::vector<std::uint32_t> stamp_;
    std::vector<std::uint32_t> closedStamp_;
    std::uint32_t generation_ = 0;
};

/**
 * Route @p net_id from @p from to @p to on @p grid. Obstacles are
 * impassable; other nets' cells may be bridged perpendicularly. On
 * success the new cells are claimed for the net and the path returned;
 * on failure nullopt (grid unchanged).
 */
std::optional<RoutedPath> routeAstar(RoutingGrid &grid, Cell from, Cell to,
                                     std::int32_t net_id,
                                     const AstarConfig &config = {});

/**
 * Same search reusing @p arena's buffers across calls (the chip router
 * routes one net at a time and passes one arena through the whole chip).
 * Results are identical to the fresh-buffer overload.
 */
std::optional<RoutedPath> routeAstar(RoutingGrid &grid, Cell from, Cell to,
                                     std::int32_t net_id, SearchArena &arena,
                                     const AstarConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_ROUTING_ASTAR_ROUTER_HPP
