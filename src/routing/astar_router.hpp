/**
 * @file
 * A* maze router over the routing grid.
 *
 * Finds shortest 4-connected paths between net terminals. Cells already
 * owned by the same net are traversable at near-zero cost, so sequential
 * terminal routing approximates a Steiner tree (trunk reuse) -- exactly
 * how a shared FDM line daisy-chains its group.
 *
 * Cells owned by other nets can be crossed perpendicularly through an
 * airbridge crossover (standard practice on superconducting chips) at a
 * high cost: the search state tracks the incoming direction, and while on
 * foreign metal only straight continuation is allowed. Bridge cells keep
 * their original owner; the crossing is reported, not claimed.
 */

#ifndef YOUTIAO_ROUTING_ASTAR_ROUTER_HPP
#define YOUTIAO_ROUTING_ASTAR_ROUTER_HPP

#include <optional>
#include <vector>

#include "routing/grid.hpp"

namespace youtiao {

/** An airbridge crossover: net @p byNet hops over @p overNet at @p cell. */
struct Crossover
{
    Cell cell;
    std::int32_t byNet = 0;
    std::int32_t overNet = 0;
};

/** One routed path (sequence of adjacent cells, endpoints inclusive). */
struct RoutedPath
{
    std::vector<Cell> cells;
    /** Number of newly claimed cells (excludes reuse and bridges). */
    std::size_t newCells = 0;
    /** Airbridge crossovers used by this path. */
    std::vector<Crossover> crossovers;
};

/** Router cost knobs. */
struct AstarConfig
{
    /** Cost of one airbridge crossover cell (>> 1 discourages them). */
    double bridgeCost = 25.0;
    /** Extra cost for new metal adjacent to an obstacle (keeps pad
     *  alleys open for later pins). */
    double crowdingPenalty = 0.25;
};

/**
 * Largest grid cell count (width * height) routeAstar can search. The
 * search state packs (cell, incoming direction) into a std::uint32_t
 * index, four states per cell, with the maximum value reserved as the
 * no-parent sentinel.
 */
std::size_t astarMaxCells();

/**
 * Throw ConfigError unless a @p width x @p height grid fits the A*
 * state index (see astarMaxCells()). routeAstar calls this itself;
 * exposed so callers can validate grid dimensions up front.
 */
void requireAstarIndexable(std::size_t width, std::size_t height);

/**
 * Route @p net_id from @p from to @p to on @p grid. Obstacles are
 * impassable; other nets' cells may be bridged perpendicularly. On
 * success the new cells are claimed for the net and the path returned;
 * on failure nullopt (grid unchanged).
 */
std::optional<RoutedPath> routeAstar(RoutingGrid &grid, Cell from, Cell to,
                                     std::int32_t net_id,
                                     const AstarConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_ROUTING_ASTAR_ROUTER_HPP
