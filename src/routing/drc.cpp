#include "routing/drc.hpp"

#include <queue>
#include <string>

namespace youtiao {

DrcReport
checkRoutingDrc(const RoutingGrid &grid, std::size_t net_count,
                const std::vector<Crossover> &crossovers)
{
    DrcReport report;
    const std::size_t w = grid.width();
    const std::size_t h = grid.height();

    // Gather per-net cell sets; a bridge cell belongs (for connectivity)
    // to both the owner below and the net crossing above.
    std::vector<std::vector<Cell>> cells(net_count);
    for (const Crossover &x : crossovers) {
        if (static_cast<std::size_t>(x.byNet) < net_count)
            cells[static_cast<std::size_t>(x.byNet)].push_back(x.cell);
    }
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            const std::int32_t o = grid.owner(Cell{x, y});
            if (o < 0)
                continue;
            if (static_cast<std::size_t>(o) >= net_count) {
                report.clean = false;
                report.violations.push_back(
                    "cell owned by unknown net " + std::to_string(o));
                continue;
            }
            cells[static_cast<std::size_t>(o)].push_back(Cell{x, y});
        }
    }

    // Per-net 4-connectivity over the unique member cells.
    for (std::size_t n = 0; n < net_count; ++n) {
        if (cells[n].empty())
            continue;
        std::vector<bool> member(w * h, false);
        std::size_t unique_members = 0;
        for (const Cell &c : cells[n]) {
            if (!member[c.y * w + c.x]) {
                member[c.y * w + c.x] = true;
                ++unique_members;
            }
        }
        std::vector<bool> seen(w * h, false);
        std::queue<Cell> frontier;
        frontier.push(cells[n].front());
        seen[cells[n].front().y * w + cells[n].front().x] = true;
        std::size_t reached = 1;
        while (!frontier.empty()) {
            const Cell c = frontier.front();
            frontier.pop();
            const long moves[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
            for (const auto &mv : moves) {
                const long nx = static_cast<long>(c.x) + mv[0];
                const long ny = static_cast<long>(c.y) + mv[1];
                if (nx < 0 || ny < 0 || nx >= static_cast<long>(w) ||
                    ny >= static_cast<long>(h))
                    continue;
                const std::size_t idx =
                    static_cast<std::size_t>(ny) * w +
                    static_cast<std::size_t>(nx);
                if (member[idx] && !seen[idx]) {
                    seen[idx] = true;
                    ++reached;
                    frontier.push(Cell{static_cast<std::size_t>(nx),
                                       static_cast<std::size_t>(ny)});
                }
            }
        }
        if (reached != unique_members) {
            report.clean = false;
            report.violations.push_back(
                "net " + std::to_string(n) + " is fragmented (" +
                std::to_string(reached) + "/" +
                std::to_string(unique_members) + " cells connected)");
        }
    }
    return report;
}

} // namespace youtiao
