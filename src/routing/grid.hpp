/**
 * @file
 * Routing grid for on-chip coplanar-waveguide layout.
 *
 * The paper's chip-level experiment uses path-based simulation on a grid
 * (10 um resolution in the paper; 20 um lines at 30 um pitch). Here one
 * grid cell spans a full line pitch, so distinct nets in distinct cells
 * automatically satisfy the spacing rule, and routing area equals path
 * length times pitch.
 */

#ifndef YOUTIAO_ROUTING_GRID_HPP
#define YOUTIAO_ROUTING_GRID_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chip/device.hpp"

namespace youtiao {

/** Grid geometry parameters. */
struct RoutingGridConfig
{
    /** Cell edge = line pitch (mm); paper: 30 um. */
    double cellMm = 0.03;
    /** Margin between the device array and the bond-pad perimeter (mm);
     *  real chips keep several mm of standoff for wirebond fan-in. */
    double marginMm = 3.0;
    /** Obstacle pad halfwidth around each device (mm); Xmon ~0.65 wide. */
    double devicePadMm = 0.30;
};

/** Cell coordinate. */
struct Cell
{
    std::size_t x = 0;
    std::size_t y = 0;

    bool operator==(const Cell &other) const
    {
        return x == other.x && y == other.y;
    }
};

/** Occupancy grid with per-cell net ownership. */
class RoutingGrid
{
  public:
    /** Sentinel owners. */
    static constexpr std::int32_t kFree = -1;
    static constexpr std::int32_t kObstacle = -2;

    /**
     * Grid covering [min - margin, max + margin] of the given extents.
     */
    RoutingGrid(Point min_corner, Point max_corner,
                const RoutingGridConfig &config = {});

    std::size_t width() const { return width_; }
    std::size_t height() const { return height_; }
    double cellMm() const { return config_.cellMm; }

    /** Nearest cell to a chip-plane point (clamped to the grid). */
    Cell cellAt(const Point &p) const;

    /** Centre point of a cell. */
    Point pointAt(const Cell &c) const;

    /** Owner of a cell (kFree, kObstacle, or a net id >= 0). */
    std::int32_t owner(const Cell &c) const;

    /** Set the owner of a cell. */
    void setOwner(const Cell &c, std::int32_t owner);

    /** Mark a square obstacle of halfwidth @p half_mm centred at @p p. */
    void blockSquare(const Point &p, double half_mm);

    /** Clear a square region back to free (to open pin access). */
    void clearSquare(const Point &p, double half_mm);

    /** Re-block the free cells of a square (restore a keep-out after a
     *  net routed through its own pin window). Net-owned cells stay. */
    void blockSquareIfFree(const Point &p, double half_mm);

    /** Count of cells owned by nets (>= 0). */
    std::size_t occupiedCellCount() const;

  private:
    std::size_t index(const Cell &c) const;

    RoutingGridConfig config_;
    double originX_ = 0.0;
    double originY_ = 0.0;
    std::size_t width_ = 0;
    std::size_t height_ = 0;
    std::vector<std::int32_t> owner_;
};

} // namespace youtiao

#endif // YOUTIAO_ROUTING_GRID_HPP
