/**
 * @file
 * Corridor routing between tiles of a hierarchical design.
 *
 * Tile routing (chip_router) terminates every net at an interface pad on
 * its tile's perimeter; this module carries those nets from the tile edge
 * to the chip boundary through the reserved seam corridors between tiles.
 * The corridor network is a lattice whose vertices are tile corners and
 * whose edges are the corridor *segments* running along each tile-cut
 * line; a net's corridor path is a contiguous chain of segments from the
 * entry segment nearest its interface pad to any segment on the chip
 * boundary.
 *
 * Segment indices are 64-bit by design: a 100k-qubit chip tiled at a few
 * dozen qubits per tile produces lattices far beyond the 32-bit state
 * budget of the dense cell-level A* (see requireAstarIndexable), and the
 * regression tests drive lattices whose ids exceed uint32 outright. The
 * search is a sparse congestion-aware Dijkstra over hash maps, so memory
 * scales with cells *visited*, not lattice size.
 */

#ifndef YOUTIAO_ROUTING_CORRIDOR_ROUTER_HPP
#define YOUTIAO_ROUTING_CORRIDOR_ROUTER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chip/device.hpp"

namespace youtiao {

/**
 * The corridor lattice spanned by the tile cuts of a hierarchical
 * design. xCutsMm/yCutsMm are the ascending tile boundary coordinates
 * including the outer chip edges, so tilesX() = xCutsMm.size() - 1.
 *
 * Segment id scheme (all 64-bit):
 *   horizontal segment (i, j): runs along y = yCutsMm[j] from xCutsMm[i]
 *     to xCutsMm[i+1], for i in [0, tilesX), j in [0, tilesY]; its id is
 *     j * tilesX + i.
 *   vertical segment (i, j): runs along x = xCutsMm[i] from yCutsMm[j]
 *     to yCutsMm[j+1], for i in [0, tilesX], j in [0, tilesY); its id is
 *     horizontalCount() + i * tilesY + j.
 */
struct CorridorLattice
{
    std::vector<double> xCutsMm;
    std::vector<double> yCutsMm;

    std::uint64_t tilesX() const
    {
        return static_cast<std::uint64_t>(xCutsMm.size()) - 1;
    }
    std::uint64_t tilesY() const
    {
        return static_cast<std::uint64_t>(yCutsMm.size()) - 1;
    }
    std::uint64_t horizontalCount() const
    {
        return tilesX() * (tilesY() + 1);
    }
    std::uint64_t segmentCount() const
    {
        return horizontalCount() + (tilesX() + 1) * tilesY();
    }

    bool isHorizontal(std::uint64_t id) const
    {
        return id < horizontalCount();
    }

    /** Length of segment @p id (mm). */
    double segmentLengthMm(std::uint64_t id) const;

    /** Midpoint of segment @p id. */
    Point segmentMidpoint(std::uint64_t id) const;

    /** Segments sharing a lattice vertex with @p id (at most 6). */
    std::vector<std::uint64_t> adjacentSegments(std::uint64_t id) const;

    /** True when the segment lies on the outer chip boundary. */
    bool isBoundary(std::uint64_t id) const;

    /**
     * The side segment of tile (ix, iy) nearest to point @p p (smallest
     * midpoint distance; ties break to the lowest id). This is where a
     * net whose tile-level interface pad sits at @p p enters the
     * corridor network.
     */
    std::uint64_t entrySegmentForTile(std::uint64_t ix, std::uint64_t iy,
                                      const Point &p) const;
};

/** Build the lattice straight from tile-cut coordinate lists. */
CorridorLattice makeCorridorLattice(std::vector<double> x_cuts_mm,
                                    std::vector<double> y_cuts_mm);

/** Corridor routing knobs. */
struct CorridorConfig
{
    /**
     * Congestion pressure: a segment already carrying u nets costs
     * length * (1 + congestionWeight * u / usageNorm) to traverse, so
     * later nets spread across parallel corridors instead of piling
     * onto one seam.
     */
    double congestionWeight = 4.0;
    /** Usage normalization for the congestion term. */
    double usageNorm = 32.0;
    /**
     * Hard per-segment net capacity; 0 = uncapped (the result reports
     * the peak usage so callers can size the corridor width instead).
     */
    std::size_t segmentCapacity = 0;
    /** Line pitch inside a corridor (mm); sizes the width report. */
    double linePitchMm = 0.03;
};

/** One net's corridor path (entry segment first). */
struct CorridorPath
{
    std::vector<std::uint64_t> segments;
    double lengthMm = 0.0;
};

/** Result of routing a batch of nets through the corridors. */
struct CorridorResult
{
    /** Per net, in input order; a failed net has an empty path. */
    std::vector<CorridorPath> paths;
    std::size_t failedNets = 0;
    /** Nets crossing each used segment. */
    std::unordered_map<std::uint64_t, std::uint32_t> usage;
    std::size_t maxSegmentUsage = 0;
    /** Corridor width needed for the busiest segment (usage * pitch). */
    double maxCorridorWidthMm = 0.0;
};

/**
 * Route every net from its entry segment to the chip boundary,
 * congestion-aware, in input order (deterministic). A net whose entry
 * segment is already on the boundary gets the one-segment path.
 */
CorridorResult routeCorridors(const CorridorLattice &lattice,
                              const std::vector<std::uint64_t> &entries,
                              const CorridorConfig &config = {});

/**
 * Point-to-point corridor search (tests and diagnostics): cheapest
 * segment chain from @p from to @p to under @p usage. Sparse: on a huge
 * lattice only the neighbourhood between the endpoints is touched.
 */
std::optional<CorridorPath> routeCorridorPath(
    const CorridorLattice &lattice, std::uint64_t from, std::uint64_t to,
    const std::unordered_map<std::uint64_t, std::uint32_t> &usage = {},
    const CorridorConfig &config = {});

/** Corridor design-rule report. */
struct CorridorDrcReport
{
    bool clean = true;
    std::vector<std::string> violations;
};

/**
 * Check the corridor invariants: every net routed, each path starts at
 * its entry segment, consecutive segments are lattice-adjacent, the
 * last segment reaches the chip boundary, the recorded usage matches
 * the paths, and (when @p config caps segments) no segment exceeds its
 * capacity.
 */
CorridorDrcReport checkCorridorDrc(const CorridorLattice &lattice,
                                   const CorridorResult &result,
                                   const std::vector<std::uint64_t> &entries,
                                   const CorridorConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_ROUTING_CORRIDOR_ROUTER_HPP
