#include "routing/astar_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/watchdog.hpp"

namespace youtiao {

namespace {

/** Manhattan-distance heuristic; the caller's weight decides how
 *  goal-directed the search is (see AstarConfig::heuristicWeight). */
double
heuristic(const Cell &a, const Cell &b, double weight)
{
    const double dx = a.x > b.x ? static_cast<double>(a.x - b.x)
                                : static_cast<double>(b.x - a.x);
    const double dy = a.y > b.y ? static_cast<double>(a.y - b.y)
                                : static_cast<double>(b.y - a.y);
    return weight * (dx + dy);
}

constexpr int kDirCount = 4;
constexpr long kMoves[kDirCount][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};

} // namespace

std::size_t
astarMaxCells()
{
    // The largest state index must stay below the no-parent sentinel
    // (uint32 max), so cells * kDirCount states must fit strictly.
    return (std::numeric_limits<std::uint32_t>::max() - kDirCount + 1) /
           kDirCount;
}

void
requireAstarIndexable(std::size_t width, std::size_t height)
{
    // Guard the multiplication itself: width * height may already wrap.
    const std::size_t limit = astarMaxCells();
    requireConfig(width == 0 || height <= limit / width,
                  "routing grid of " + std::to_string(width) + "x" +
                      std::to_string(height) +
                      " cells exceeds the A* 32-bit state index; shrink "
                      "the grid, coarsen the cell pitch, or use the "
                      "hierarchical tile router (64-bit corridor ids)");
}

std::optional<RoutedPath>
routeAstar(RoutingGrid &grid, Cell from, Cell to, std::int32_t net_id,
           const AstarConfig &config)
{
    SearchArena arena;
    return routeAstar(grid, from, to, net_id, arena, config);
}

std::optional<RoutedPath>
routeAstar(RoutingGrid &grid, Cell from, Cell to, std::int32_t net_id,
           SearchArena &arena, const AstarConfig &config)
{
    requireConfig(net_id >= 0, "net id must be non-negative");
    const std::size_t w = grid.width();
    const std::size_t h = grid.height();
    requireAstarIndexable(w, h);
    auto flat = [w](const Cell &c) { return c.y * w + c.x; };

    auto mine_or_free = [&](const Cell &c) {
        const std::int32_t o = grid.owner(c);
        return o == RoutingGrid::kFree || o == net_id;
    };
    // Endpoints must be plain cells; a bridge cannot start or end a path.
    if (!mine_or_free(from) || !mine_or_free(to))
        return std::nullopt;

    // Search state: (cell, incoming direction). Direction matters only on
    // foreign metal, where a bridge forces straight continuation. The
    // arena holds g/parent/closed per state; begin() invalidates the
    // previous search in O(1) instead of refilling O(states) memory.
    const std::size_t state_count = w * h * kDirCount;
    arena.begin(state_count);
    watchdog::gaugeMax(watchdog::Gauge::AstarArenaBytes,
                       arena.memoryBytes());
    constexpr std::uint32_t no_parent = SearchArena::kNoParent;

    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
    // Seed: leaving the start cell in any direction.
    for (int d = 0; d < kDirCount; ++d) {
        const std::size_t s = flat(from) * kDirCount +
                              static_cast<std::size_t>(d);
        arena.relax(s, 0.0, no_parent);
        open.emplace(heuristic(from, to, config.heuristicWeight),
                     static_cast<std::uint32_t>(s));
    }

    std::uint32_t goal_state = no_parent;
    std::size_t expanded = 0;
    while (!open.empty()) {
        const auto [f, state] = open.top();
        open.pop();
        (void)f;
        if (arena.closed(state))
            continue;
        arena.close(state);
        ++expanded;
        // Strided: the branch in poll() is one relaxed load, but even
        // that is kept off the per-expansion critical path.
        if ((expanded & 0xFFF) == 0)
            cancel::poll("astar");
        const std::size_t idx = state / kDirCount;
        const int dir_in = static_cast<int>(state % kDirCount);
        const Cell here{idx % w, idx / w};
        if (here == to) {
            goal_state = state;
            break;
        }
        const bool on_bridge = !mine_or_free(here);
        for (int d = 0; d < kDirCount; ++d) {
            if (on_bridge && d != dir_in)
                continue; // bridges run straight
            const long nx = static_cast<long>(here.x) + kMoves[d][0];
            const long ny = static_cast<long>(here.y) + kMoves[d][1];
            if (nx < 0 || ny < 0 || nx >= static_cast<long>(w) ||
                ny >= static_cast<long>(h))
                continue;
            const Cell next{static_cast<std::size_t>(nx),
                            static_cast<std::size_t>(ny)};
            const std::int32_t owner = grid.owner(next);
            if (owner == RoutingGrid::kObstacle)
                continue;
            double step;
            if (owner == net_id) {
                step = 0.02; // trunk reuse is nearly free
            } else if (owner == RoutingGrid::kFree) {
                step = 1.0;
                // Crowding: staying off pad walls keeps alleys open.
                for (const auto &mv : kMoves) {
                    const long ax = nx + mv[0];
                    const long ay = ny + mv[1];
                    if (ax < 0 || ay < 0 ||
                        ax >= static_cast<long>(w) ||
                        ay >= static_cast<long>(h))
                        continue;
                    const Cell adj{static_cast<std::size_t>(ax),
                                   static_cast<std::size_t>(ay)};
                    if (grid.owner(adj) == RoutingGrid::kObstacle) {
                        step += config.crowdingPenalty;
                        break;
                    }
                }
            } else {
                step = config.bridgeCost; // airbridge crossover
            }
            const std::size_t nstate =
                flat(next) * kDirCount + static_cast<std::size_t>(d);
            const double cand = arena.g(state) + step;
            if (!arena.closed(nstate) && cand < arena.g(nstate)) {
                arena.relax(nstate, cand, state);
                open.emplace(cand + heuristic(next, to,
                                              config.heuristicWeight),
                             static_cast<std::uint32_t>(nstate));
            }
        }
    }
    metrics::count("astar.cells_expanded", expanded);
    metrics::observe("astar.cells_expanded",
                     static_cast<double>(expanded));
    trace::counter("astar.cells_expanded",
                   static_cast<double>(expanded), "routing");
    if (goal_state == no_parent) {
        metrics::count("astar.failed_routes");
        trace::instant("astar.failed_route", "routing");
        return std::nullopt;
    }

    RoutedPath path;
    std::uint32_t state = goal_state;
    const std::size_t from_idx = flat(from);
    while (true) {
        const std::size_t idx = state / kDirCount;
        path.cells.push_back(Cell{idx % w, idx / w});
        if (idx == from_idx && arena.parent(state) == no_parent)
            break;
        state = arena.parent(state);
        requireInternal(state != no_parent, "broken A* parent chain");
    }
    std::reverse(path.cells.begin(), path.cells.end());
    for (const Cell &c : path.cells) {
        const std::int32_t owner = grid.owner(c);
        if (owner == net_id)
            continue;
        if (owner == RoutingGrid::kFree) {
            grid.setOwner(c, net_id);
            ++path.newCells;
        } else {
            path.crossovers.push_back(Crossover{c, net_id, owner});
        }
    }
    metrics::count("astar.paths_routed");
    metrics::count("astar.path_cells", path.cells.size());
    metrics::count("astar.crossovers", path.crossovers.size());
    return path;
}

} // namespace youtiao
