/**
 * @file
 * Generative chip partition (paper Section 4.4).
 *
 * Whole-chip TDM grouping over n devices into k groups is O(n^k) in the
 * worst case, so large chips are first cut into multiplexing regions:
 *
 *   stage 1  randomly seed k regions and expand each by absorbing the
 *            unassigned qubit with the lowest equivalent distance;
 *   stage 2  swap qubits at region borders to the seed they are actually
 *            closest to, escaping local optima;
 *   stage 3  run the (greedy, therefore pipelinable) FDM/TDM grouping per
 *            region while expansion continues;
 *   stage 4  stop when no swaps remain and the partition passes the
 *            design-rule check (all qubits assigned, regions connected).
 */

#ifndef YOUTIAO_PARTITION_GENERATIVE_PARTITION_HPP
#define YOUTIAO_PARTITION_GENERATIVE_PARTITION_HPP

#include <cstddef>
#include <vector>

#include "chip/topology.hpp"
#include "common/matrix.hpp"
#include "common/prng.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/tdm.hpp"

namespace youtiao {

/** Partitioning knobs. */
struct PartitionConfig
{
    /** Number of regions (seeds). 0 picks ~sqrt(Q/8)+1 automatically. */
    std::size_t regionCount = 0;
    /** Maximum border-swap rounds before declaring convergence. */
    std::size_t maxSwapRounds = 16;
};

/** A region decomposition of the chip's qubits. */
struct ChipPartition
{
    /** Qubit indices per region. */
    std::vector<std::vector<std::size_t>> regions;
    /** Region id per qubit. */
    std::vector<std::size_t> regionOfQubit;
    /** Seed qubit per region. */
    std::vector<std::size_t> seeds;
    /** Border swaps performed in stage 2. */
    std::size_t swapCount = 0;

    std::size_t regionCount() const { return regions.size(); }
};

/**
 * Run stages 1-2 (+DRC of stage 4): seed, expand, border-swap.
 * Deterministic given @p prng.
 */
ChipPartition generativePartition(const ChipTopology &chip,
                                  const SymmetricMatrix &d_equiv,
                                  const PartitionConfig &config,
                                  Prng &prng);

/**
 * Baseline for the ablation: geometric slabs (qubits cut into
 * @p region_count vertical strips by x coordinate), the "traditional
 * clustering based on chip layout" the paper says ignores crosstalk.
 */
ChipPartition geometricPartition(const ChipTopology &chip,
                                 std::size_t region_count);

/** Mean intra-region pairwise equivalent distance (lower = tighter). */
double meanIntraRegionDistance(const ChipPartition &partition,
                               const SymmetricMatrix &d_equiv);

/**
 * DRC of stage 4: every qubit assigned to exactly one region and every
 * region induces a connected subgraph of the coupling map.
 */
bool partitionPassesDrc(const ChipTopology &chip,
                        const ChipPartition &partition);

/**
 * Stage 3: run YOUTIAO's greedy FDM grouping independently inside every
 * region (regions are pipelinable; results are concatenated into one
 * chip-wide plan).
 */
FdmPlan groupFdmPartitioned(const ChipPartition &partition,
                            const SymmetricMatrix &d_equiv,
                            const FdmGroupingConfig &config = {});

/**
 * Stage 3 for the Z plane: noise-aware TDM grouping per region. Couplers
 * straddling a region border belong to their first endpoint's region.
 */
TdmPlan groupTdmPartitioned(const ChipTopology &chip,
                            const ChipPartition &partition,
                            const SymmetricMatrix &zz_qubit,
                            const TdmGroupingConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_PARTITION_GENERATIVE_PARTITION_HPP
