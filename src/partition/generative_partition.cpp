#include "partition/generative_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace youtiao {

namespace {

constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

/** Is the region still connected (in the coupling map) without @p drop? */
bool
regionConnectedWithout(const ChipTopology &chip,
                       const std::vector<std::size_t> &region,
                       std::size_t drop)
{
    std::vector<std::size_t> rest;
    rest.reserve(region.size());
    for (std::size_t q : region) {
        if (q != drop)
            rest.push_back(q);
    }
    if (rest.size() <= 1)
        return !rest.empty();
    std::vector<bool> inside(chip.qubitCount(), false);
    for (std::size_t q : rest)
        inside[q] = true;
    std::vector<bool> seen(chip.qubitCount(), false);
    std::queue<std::size_t> frontier;
    frontier.push(rest[0]);
    seen[rest[0]] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
        const std::size_t v = frontier.front();
        frontier.pop();
        for (const Incidence &inc : chip.qubitGraph().incidences(v)) {
            if (inside[inc.vertex] && !seen[inc.vertex]) {
                seen[inc.vertex] = true;
                ++reached;
                frontier.push(inc.vertex);
            }
        }
    }
    return reached == rest.size();
}

} // namespace

ChipPartition
generativePartition(const ChipTopology &chip, const SymmetricMatrix &d_equiv,
                    const PartitionConfig &config, Prng &prng)
{
    const std::size_t n = chip.qubitCount();
    requireConfig(n > 0, "cannot partition an empty chip");
    requireConfig(d_equiv.size() == n,
                  "equivalent-distance matrix must cover every qubit");
    std::size_t k = config.regionCount;
    if (k == 0)
        k = std::max<std::size_t>(
            2, static_cast<std::size_t>(
                   std::lround(std::sqrt(static_cast<double>(n)) / 2.0)));
    requireConfig(k <= n, "more regions than qubits");

    ChipPartition part;
    part.regionOfQubit.assign(n, kUnassigned);
    part.regions.resize(k);

    // Stage 1a: random first seed, then farthest-point placement so seeds
    // spread across the layout.
    part.seeds.push_back(prng.uniformInt(n));
    while (part.seeds.size() < k) {
        double best = -1.0;
        std::size_t pick = 0;
        for (std::size_t q = 0; q < n; ++q) {
            double nearest = std::numeric_limits<double>::infinity();
            for (std::size_t s : part.seeds)
                nearest = std::min(nearest, d_equiv(s, q));
            if (nearest > best) {
                best = nearest;
                pick = q;
            }
        }
        part.seeds.push_back(pick);
    }
    for (std::size_t r = 0; r < k; ++r) {
        part.regions[r].push_back(part.seeds[r]);
        part.regionOfQubit[part.seeds[r]] = r;
    }

    // Stage 1b: balanced expansion; the smallest region absorbs the
    // unassigned qubit with the lowest equivalent distance to any of its
    // current members, preferring coupling-graph neighbours of the region
    // so regions stay contiguous and compact.
    std::size_t assigned = k;
    while (assigned < n) {
        std::size_t region = 0;
        for (std::size_t r = 1; r < k; ++r) {
            if (part.regions[r].size() < part.regions[region].size())
                region = r;
        }
        double best_adjacent = std::numeric_limits<double>::infinity();
        double best_any = std::numeric_limits<double>::infinity();
        std::size_t pick_adjacent = kUnassigned;
        std::size_t pick_any = kUnassigned;
        for (std::size_t q = 0; q < n; ++q) {
            if (part.regionOfQubit[q] != kUnassigned)
                continue;
            double d = std::numeric_limits<double>::infinity();
            for (std::size_t member : part.regions[region])
                d = std::min(d, d_equiv(member, q));
            if (d < best_any) {
                best_any = d;
                pick_any = q;
            }
            bool adjacent = false;
            for (const Incidence &inc : chip.qubitGraph().incidences(q)) {
                if (part.regionOfQubit[inc.vertex] == region) {
                    adjacent = true;
                    break;
                }
            }
            if (adjacent && d < best_adjacent) {
                best_adjacent = d;
                pick_adjacent = q;
            }
        }
        const std::size_t pick =
            pick_adjacent != kUnassigned ? pick_adjacent : pick_any;
        part.regions[region].push_back(pick);
        part.regionOfQubit[pick] = region;
        ++assigned;
    }

    // Stage 2: border swaps. A border qubit closer (in equivalent
    // distance) to a neighbouring region's seed migrates there, as long as
    // its old region stays connected and non-empty.
    for (std::size_t round = 0; round < config.maxSwapRounds; ++round) {
        bool swapped = false;
        for (std::size_t q = 0; q < n; ++q) {
            const std::size_t own = part.regionOfQubit[q];
            if (q == part.seeds[own] || part.regions[own].size() <= 1)
                continue;
            std::size_t target = own;
            double best = d_equiv(part.seeds[own], q);
            for (const Incidence &inc : chip.qubitGraph().incidences(q)) {
                const std::size_t r = part.regionOfQubit[inc.vertex];
                if (r == own)
                    continue;
                const double d = d_equiv(part.seeds[r], q);
                if (d < best) {
                    best = d;
                    target = r;
                }
            }
            if (target == own)
                continue;
            if (!regionConnectedWithout(chip, part.regions[own], q))
                continue;
            auto &old_list = part.regions[own];
            old_list.erase(std::find(old_list.begin(), old_list.end(), q));
            part.regions[target].push_back(q);
            part.regionOfQubit[q] = target;
            ++part.swapCount;
            swapped = true;
        }
        if (!swapped)
            break; // stage 4: no swaps left
    }
    return part;
}

ChipPartition
geometricPartition(const ChipTopology &chip, std::size_t region_count)
{
    const std::size_t n = chip.qubitCount();
    requireConfig(region_count >= 1 && region_count <= n,
                  "bad region count");
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&chip](std::size_t a, std::size_t b) {
                  const Point pa = chip.qubit(a).position;
                  const Point pb = chip.qubit(b).position;
                  if (pa.x != pb.x)
                      return pa.x < pb.x;
                  if (pa.y != pb.y)
                      return pa.y < pb.y;
                  return a < b;
              });
    ChipPartition part;
    part.regionOfQubit.assign(n, 0);
    part.regions.resize(region_count);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i * region_count / n;
        part.regions[r].push_back(order[i]);
        part.regionOfQubit[order[i]] = r;
    }
    for (const auto &region : part.regions) {
        requireInternal(!region.empty(), "empty geometric region");
        part.seeds.push_back(region.front());
    }
    return part;
}

double
meanIntraRegionDistance(const ChipPartition &partition,
                        const SymmetricMatrix &d_equiv)
{
    double total = 0.0;
    std::size_t pairs = 0;
    for (const auto &region : partition.regions) {
        for (std::size_t i = 0; i < region.size(); ++i) {
            for (std::size_t j = i + 1; j < region.size(); ++j) {
                total += d_equiv(region[i], region[j]);
                ++pairs;
            }
        }
    }
    return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

bool
partitionPassesDrc(const ChipTopology &chip, const ChipPartition &partition)
{
    std::vector<std::size_t> seen(chip.qubitCount(), 0);
    for (const auto &region : partition.regions) {
        if (region.empty())
            return false;
        for (std::size_t q : region) {
            if (q >= chip.qubitCount())
                return false;
            ++seen[q];
        }
        // Connectivity: remove a non-existent qubit == check as-is.
        if (!regionConnectedWithout(chip, region, chip.qubitCount()))
            return false;
    }
    return std::all_of(seen.begin(), seen.end(),
                       [](std::size_t c) { return c == 1; });
}

FdmPlan
groupFdmPartitioned(const ChipPartition &partition,
                    const SymmetricMatrix &d_equiv,
                    const FdmGroupingConfig &config)
{
    FdmPlan full;
    full.lineOfQubit.assign(d_equiv.size(), static_cast<std::size_t>(-1));
    for (const auto &region : partition.regions) {
        // Reduce the distance matrix to the region, group locally, remap.
        SymmetricMatrix local(region.size());
        for (std::size_t i = 0; i < region.size(); ++i) {
            for (std::size_t j = i + 1; j < region.size(); ++j)
                local(i, j) = d_equiv(region[i], region[j]);
        }
        FdmGroupingConfig local_cfg = config;
        local_cfg.startQubit = 0;
        const FdmPlan local_plan = groupFdm(local, local_cfg);
        for (const auto &line : local_plan.lines) {
            std::vector<std::size_t> mapped;
            mapped.reserve(line.size());
            for (std::size_t q : line)
                mapped.push_back(region[q]);
            const std::size_t line_id = full.lines.size();
            for (std::size_t q : mapped)
                full.lineOfQubit[q] = line_id;
            full.lines.push_back(std::move(mapped));
        }
    }
    return full;
}

TdmPlan
groupTdmPartitioned(const ChipTopology &chip, const ChipPartition &partition,
                    const SymmetricMatrix &zz_qubit,
                    const TdmGroupingConfig &config)
{
    // Device pools per region: the region's qubits plus every coupler
    // whose first endpoint lives there.
    std::vector<std::vector<std::size_t>> pools(partition.regionCount());
    for (std::size_t r = 0; r < partition.regionCount(); ++r)
        pools[r] = partition.regions[r];
    for (std::size_t c = 0; c < chip.couplerCount(); ++c) {
        const std::size_t owner =
            partition.regionOfQubit[chip.coupler(c).qubitA];
        pools[owner].push_back(chip.couplerDeviceId(c));
    }
    return groupTdmPools(chip, zz_qubit, config, pools);
}

} // namespace youtiao
