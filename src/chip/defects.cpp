#include "chip/defects.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace youtiao {

DefectRates
uniformDefectRates(double rate)
{
    requireConfig(rate >= 0.0 && rate <= 1.0,
                  "defect rate must be in [0, 1]");
    DefectRates rates;
    rates.deadQubitRate = rate;
    rates.brokenCouplerRate = rate;
    rates.maskedBandRate = rate;
    rates.blockedCellRate = rate;
    return rates;
}

ChipDefects
randomDefects(const ChipTopology &chip, const DefectRates &rates,
              std::uint64_t seed)
{
    Prng prng(seed);
    ChipDefects defects;
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        if (prng.bernoulli(rates.deadQubitRate))
            defects.deadQubits.push_back(q);
    }
    for (std::size_t c = 0; c < chip.couplerCount(); ++c) {
        if (prng.bernoulli(rates.brokenCouplerRate))
            defects.brokenCouplers.push_back(c);
    }
    // One 50 MHz candidate slice per 500 MHz of the 4-7 GHz band; a
    // fired slice models a TWPA dip or package resonance.
    for (double lo = 4.0; lo < 7.0; lo += 0.5) {
        if (prng.bernoulli(rates.maskedBandRate))
            defects.maskedBandsGHz.push_back(
                FrequencyMask{lo, lo + 0.05});
    }
    for (std::size_t d = 0; d < chip.deviceCount(); ++d) {
        if (prng.bernoulli(rates.blockedCellRate)) {
            Point p = chip.devicePosition(d);
            // Offset into the routing channel next to the device so the
            // block contends with wires, not with the keep-out pad.
            p.x += prng.uniform(0.4, 0.8);
            p.y += prng.uniform(-0.2, 0.2);
            defects.blockedRoutingCells.push_back(p);
        }
    }
    return defects;
}

DegradedChip
applyDefects(const ChipTopology &chip, const ChipDefects &defects)
{
    for (std::size_t q : defects.deadQubits)
        requireConfig(q < chip.qubitCount(),
                      "dead qubit index out of range");
    for (std::size_t c : defects.brokenCouplers)
        requireConfig(c < chip.couplerCount(),
                      "broken coupler index out of range");

    std::vector<bool> dead(chip.qubitCount(), false);
    for (std::size_t q : defects.deadQubits)
        dead[q] = true;
    std::vector<bool> broken(chip.couplerCount(), false);
    for (std::size_t c : defects.brokenCouplers)
        broken[c] = true;

    DegradedChip out;
    out.chip = ChipTopology(chip.name());
    out.newIndexOfQubit.assign(chip.qubitCount(), ChipTopology::npos);
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        if (dead[q])
            continue;
        out.newIndexOfQubit[q] = out.chip.addQubit(chip.qubit(q));
        out.oldIndexOfQubit.push_back(q);
    }
    requireConfig(out.chip.qubitCount() > 0,
                  "every qubit is dead; nothing left to design");

    for (std::size_t c = 0; c < chip.couplerCount(); ++c) {
        const CouplerInfo &info = chip.coupler(c);
        if (broken[c] || dead[info.qubitA] || dead[info.qubitB]) {
            out.removedCouplers.push_back(c);
            continue;
        }
        out.chip.addCoupler(out.newIndexOfQubit[info.qubitA],
                            out.newIndexOfQubit[info.qubitB],
                            info.position);
    }
    return out;
}

} // namespace youtiao
