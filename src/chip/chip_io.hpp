/**
 * @file
 * Plain-text chip description format.
 *
 * Lets users bring their own chip to the designer (youtiao_cli --chip):
 *
 *     youtiao-chip 1
 *     name my chip
 *     qubit <x mm> <y mm> [frequency GHz] [T1 ns]
 *     ...
 *     coupler <qubit a> <qubit b>
 *     ...
 *
 * Lines starting with '#' are comments. Qubits are numbered in file
 * order starting at 0.
 */

#ifndef YOUTIAO_CHIP_CHIP_IO_HPP
#define YOUTIAO_CHIP_CHIP_IO_HPP

#include <iosfwd>
#include <string>

#include "chip/topology.hpp"

namespace youtiao {

/** Current chip format version. */
inline constexpr int kChipFormatVersion = 1;

/** Write @p chip to @p out in the format above. */
void saveChip(std::ostream &out, const ChipTopology &chip);

/** Render to a string. */
std::string chipToString(const ChipTopology &chip);

/** Parse a chip; throws ConfigError on malformed input. */
ChipTopology loadChip(std::istream &in);

/** Parse from a string. */
ChipTopology chipFromString(const std::string &text);

} // namespace youtiao

#endif // YOUTIAO_CHIP_CHIP_IO_HPP
