/**
 * @file
 * Zero-copy binary chip format (magic "YTCHPBIN", schema
 * youtiao-chipbin-1; see docs/FILE_FORMATS.md).
 *
 * The text format (chip_io.hpp) stays the human-readable interchange
 * v0; this is the bulk format for large chips, where text parsing
 * dominates load time. The payload is the chip SoA: per-qubit x / y /
 * frequency / T1 as f64 arrays, coupler endpoints as u32 arrays and
 * coupler positions as f64 arrays, plus the chip name as raw bytes.
 * Reading mmaps the file, validates the section table, and rebuilds
 * the ChipTopology straight from the mapped arrays -- no tokenizing,
 * no per-line allocation.
 *
 * Versioning follows the text formats: the reader accepts schema
 * versions up to kChipBinVersion and migrates older payloads forward
 * through per-version shims, so bumping the version never strands a
 * committed chip file; future versions are refused with ConfigError.
 */

#ifndef YOUTIAO_CHIP_CHIP_BIN_HPP
#define YOUTIAO_CHIP_CHIP_BIN_HPP

#include <cstdint>
#include <string>

#include "chip/topology.hpp"

namespace youtiao {

/** 8-character magic opening every binary chip file. */
inline constexpr char kChipBinMagic[] = "YTCHPBIN";

/** Current binary chip schema version (youtiao-chipbin-1). */
inline constexpr std::uint32_t kChipBinVersion = 1;

/** Render @p chip as a complete binary file image. */
std::vector<unsigned char> chipToBinary(const ChipTopology &chip);

/** Write @p chip to @p path in the binary format. Throws ConfigError
 *  when the file cannot be written. */
void saveChipBinary(const std::string &path, const ChipTopology &chip);

/** Parse a binary chip file image. Throws ConfigError on anything
 *  malformed: wrong magic, future version, truncation, sections that
 *  disagree on the qubit count, out-of-range coupler endpoints. */
ChipTopology chipFromBinary(const unsigned char *data, std::size_t size);

/** mmap and parse the binary chip file at @p path. */
ChipTopology loadChipBinary(const std::string &path);

/**
 * Load a chip from @p path in whichever format it is: binary files are
 * recognized by their magic, anything else goes through the text
 * parser. Throws ConfigError when neither accepts the file.
 */
ChipTopology loadChipAuto(const std::string &path);

} // namespace youtiao

#endif // YOUTIAO_CHIP_CHIP_BIN_HPP
