/**
 * @file
 * ChipTopology: the full device-level model of a superconducting chip.
 *
 * Two graph views are exposed:
 *  - the qubit graph (vertices = qubits, edges = couplers), used for
 *    circuit mapping and two-qubit-gate reasoning;
 *  - the device graph (vertices = qubits followed by couplers, edges =
 *    qubit-coupler incidences), used for Z-line/TDM reasoning where
 *    couplers are first-class devices.
 *
 * Device indexing convention: device id d refers to qubit d when
 * d < qubitCount(), otherwise to coupler d - qubitCount().
 */

#ifndef YOUTIAO_CHIP_TOPOLOGY_HPP
#define YOUTIAO_CHIP_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "chip/device.hpp"
#include "graph/graph.hpp"

namespace youtiao {

/** A complete chip: placed qubits, placed couplers, and connectivity. */
class ChipTopology
{
  public:
    ChipTopology() = default;

    /** Construct an empty chip with a human-readable name. */
    explicit ChipTopology(std::string name);

    const std::string &name() const { return name_; }

    std::size_t qubitCount() const { return qubits_.size(); }
    std::size_t couplerCount() const { return couplers_.size(); }
    /** Total Z-controlled devices: qubits + couplers. */
    std::size_t deviceCount() const
    {
        return qubits_.size() + couplers_.size();
    }

    /** Add a qubit; returns its index. */
    std::size_t addQubit(const QubitInfo &info);

    /**
     * Add a coupler between two existing qubits; placed at their midpoint
     * unless @p at is provided. Returns its coupler index.
     */
    std::size_t addCoupler(std::size_t qubit_a, std::size_t qubit_b);
    std::size_t addCoupler(std::size_t qubit_a, std::size_t qubit_b,
                           const Point &at);

    const QubitInfo &qubit(std::size_t index) const;
    QubitInfo &qubit(std::size_t index);
    const CouplerInfo &coupler(std::size_t index) const;

    const std::vector<QubitInfo> &qubits() const { return qubits_; }
    const std::vector<CouplerInfo> &couplers() const { return couplers_; }

    /** Kind of device id @p device (see indexing convention above). */
    DeviceKind deviceKind(std::size_t device) const;

    /** Chip-plane position of device id @p device. */
    Point devicePosition(std::size_t device) const;

    /** Device id of qubit @p q (identity). */
    std::size_t qubitDeviceId(std::size_t q) const;

    /** Device id of coupler @p c (offset by qubitCount). */
    std::size_t couplerDeviceId(std::size_t c) const;

    /**
     * Qubit connectivity graph; edge index i corresponds to coupler i.
     */
    const Graph &qubitGraph() const { return qubitGraph_; }

    /**
     * Device-level graph over qubits and couplers: each coupler is a vertex
     * adjacent to its two endpoint qubits. Built lazily and cached.
     */
    const Graph &deviceGraph() const;

    /** Euclidean distance between two qubits (mm). */
    double physicalDistance(std::size_t qubit_a, std::size_t qubit_b) const;

    /** Bounding box width x height of all device positions (mm). */
    Point boundingBox() const;

    /** Coupler index joining two qubits, or npos when not coupled. */
    std::size_t couplerBetween(std::size_t qubit_a,
                               std::size_t qubit_b) const;

    /** Sentinel for "no such coupler". */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    std::string name_;
    std::vector<QubitInfo> qubits_;
    std::vector<CouplerInfo> couplers_;
    Graph qubitGraph_;
    mutable Graph deviceGraph_;
    mutable bool deviceGraphDirty_ = true;
};

} // namespace youtiao

#endif // YOUTIAO_CHIP_TOPOLOGY_HPP
