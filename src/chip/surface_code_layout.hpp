/**
 * @file
 * Rotated surface-code chip layouts for the fault-tolerant case study
 * (paper Section 5.2, Table 1).
 *
 * A distance-d rotated surface code uses d^2 data qubits and d^2 - 1
 * parity-check (measure) qubits, connected through 4d(d-1) tunable
 * couplers. Google's architecture wires every qubit with dedicated XY and Z
 * lines; YOUTIAO drives the parity-check qubits' parallel gates over FDM XY
 * lines and the data-qubit/coupler Z pulses over TDM lines.
 */

#ifndef YOUTIAO_CHIP_SURFACE_CODE_LAYOUT_HPP
#define YOUTIAO_CHIP_SURFACE_CODE_LAYOUT_HPP

#include <cstddef>
#include <vector>

#include "chip/topology.hpp"

namespace youtiao {

/** Role of a qubit inside the surface code. */
enum class SurfaceCodeRole { Data, MeasureX, MeasureZ };

/** A distance-d rotated surface-code patch realized as a chip. */
struct SurfaceCodeLayout
{
    /** Code distance (odd, >= 3). */
    std::size_t distance = 3;
    /** The chip: data qubits first, then measure qubits. */
    ChipTopology chip;
    /** Role per qubit index. */
    std::vector<SurfaceCodeRole> roles;

    std::size_t dataQubitCount() const { return distance * distance; }
    std::size_t measureQubitCount() const
    {
        return distance * distance - 1;
    }
};

/**
 * Build the distance-d rotated surface-code layout. Throws ConfigError for
 * even or < 3 distances.
 *
 * Geometry: data qubits at even-even plane coordinates; interior measure
 * qubits at the centres of the (d-1)^2 plaquettes, checkerboarded X/Z;
 * 2(d-1) boundary measure qubits on alternating half-plaquettes. Each
 * measure qubit couples to its 2 (boundary) or 4 (interior) adjacent data
 * qubits.
 */
SurfaceCodeLayout makeSurfaceCodeLayout(std::size_t distance,
                                        double pitch_mm = 1.6);

/**
 * Number of two-qubit-gate layers in one error-correction cycle when every
 * stabilizer runs its four (or two) CZs in the standard 4-step dance with
 * no wiring constraints: always 4.
 */
std::size_t idealCzLayersPerCycle();

} // namespace youtiao

#endif // YOUTIAO_CHIP_SURFACE_CODE_LAYOUT_HPP
