#include "chip/chip_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"

namespace youtiao {

void
saveChip(std::ostream &out, const ChipTopology &chip)
{
    out << "youtiao-chip " << kChipFormatVersion << '\n';
    out << "name " << chip.name() << '\n';
    out.precision(17);
    for (const QubitInfo &q : chip.qubits()) {
        out << "qubit " << q.position.x << ' ' << q.position.y << ' '
            << q.baseFrequencyGHz << ' ' << q.t1Ns << '\n';
    }
    for (const CouplerInfo &c : chip.couplers())
        out << "coupler " << c.qubitA << ' ' << c.qubitB << '\n';
}

std::string
chipToString(const ChipTopology &chip)
{
    std::ostringstream out;
    saveChip(out, chip);
    return out.str();
}

ChipTopology
loadChip(std::istream &in)
{
    std::string line;
    // Header.
    int version = -1;
    {
        while (std::getline(in, line)) {
            if (!line.empty() && line[0] != '#')
                break;
        }
        std::istringstream header(line);
        std::string magic;
        header >> magic >> version;
        requireConfig(magic == "youtiao-chip",
                      "not a youtiao chip file (missing header)");
        requireConfig(version == kChipFormatVersion,
                      "unsupported chip format version " +
                          std::to_string(version));
    }

    ChipTopology chip;
    bool named = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream stream(line);
        std::string key;
        stream >> key;
        if (key == "name") {
            std::string name;
            std::getline(stream, name);
            if (!name.empty() && name.front() == ' ')
                name.erase(name.begin());
            chip = ChipTopology(name);
            named = true;
        } else if (key == "qubit") {
            requireConfig(named, "'name' must precede qubits");
            QubitInfo q;
            requireConfig(static_cast<bool>(stream >> q.position.x >>
                                            q.position.y),
                          "qubit line needs x and y");
            // Optional frequency and T1.
            if (!(stream >> q.baseFrequencyGHz))
                q.baseFrequencyGHz = 5.0;
            else if (!(stream >> q.t1Ns))
                q.t1Ns = 90e3;
            requireConfig(q.baseFrequencyGHz > 0.0 && q.t1Ns > 0.0,
                          "qubit frequency and T1 must be positive");
            chip.addQubit(q);
        } else if (key == "coupler") {
            std::size_t a = 0, b = 0;
            requireConfig(static_cast<bool>(stream >> a >> b),
                          "coupler line needs two qubit indices");
            if (fault::site("chip.load_coupler")) {
                // Injected wire-bond failure: the coupler exists on the
                // chip but cannot be driven, so it never enters the
                // topology the designer wires.
                log::warn("fault injected: coupler dropped at load",
                          {{"qubit_a", a}, {"qubit_b", b}});
                continue;
            }
            chip.addCoupler(a, b); // validates indices / duplicates
        } else {
            throw ConfigError("unknown chip file key '" + key + "'");
        }
    }
    requireConfig(chip.qubitCount() > 0, "chip file declares no qubits");
    return chip;
}

ChipTopology
chipFromString(const std::string &text)
{
    std::istringstream in(text);
    return loadChip(in);
}

} // namespace youtiao
