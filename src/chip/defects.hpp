/**
 * @file
 * Fabrication-defect model for degraded chips.
 *
 * Fabricated Xmon chips never match the ideal lattice: qubits come out
 * dead (no response, T1 collapse), couplers and their wire bonds break,
 * packaging blocks routing channels, and TWPA/filter dips mask slices of
 * the readout/control band. ChipDefects records those losses; applying
 * them to an ideal ChipTopology yields the chip the designer must
 * actually wire, plus the index maps needed to report results in the
 * original chip's coordinates.
 */

#ifndef YOUTIAO_CHIP_DEFECTS_HPP
#define YOUTIAO_CHIP_DEFECTS_HPP

#include <cstdint>
#include <vector>

#include "chip/topology.hpp"

namespace youtiao {

/** One masked slice of the frequency band (GHz, [lo, hi)). */
struct FrequencyMask
{
    double loGHz = 0.0;
    double hiGHz = 0.0;
};

/** Everything broken on one fabricated chip. */
struct ChipDefects
{
    /** Dead qubit indices (sorted, unique). */
    std::vector<std::size_t> deadQubits;
    /** Broken coupler indices (sorted, unique); couplers touching a
     *  dead qubit are implicitly broken and need not be listed. */
    std::vector<std::size_t> brokenCouplers;
    /** Unusable slices of the qubit frequency band. */
    std::vector<FrequencyMask> maskedBandsGHz;
    /** Chip-plane positions whose routing cells are blocked (mm);
     *  each blocks a square of @ref blockedHalfWidthMm. */
    std::vector<Point> blockedRoutingCells;
    /** Halfwidth of each blocked routing square (mm). */
    double blockedHalfWidthMm = 0.1;

    bool
    empty() const
    {
        return deadQubits.empty() && brokenCouplers.empty() &&
               maskedBandsGHz.empty() && blockedRoutingCells.empty();
    }
};

/** Defect-rate knobs for random generation. */
struct DefectRates
{
    /** Probability each qubit is dead. */
    double deadQubitRate = 0.0;
    /** Probability each coupler is broken (beyond dead endpoints). */
    double brokenCouplerRate = 0.0;
    /** Probability a 50 MHz band slice is masked (per 500 MHz of band). */
    double maskedBandRate = 0.0;
    /** Probability each device position sprouts a blocked routing cell
     *  nearby (packaging flaws scale with device count). */
    double blockedCellRate = 0.0;
};

/**
 * Draw a random defect set for @p chip at the given rates, fully
 * determined by @p seed. The common single-rate campaigns set every
 * rate to one value via uniformDefectRates().
 */
ChipDefects randomDefects(const ChipTopology &chip,
                          const DefectRates &rates, std::uint64_t seed);

/** All four rates set to @p rate. */
DefectRates uniformDefectRates(double rate);

/** A degraded chip plus the maps back to the ideal chip's indices. */
struct DegradedChip
{
    ChipTopology chip;
    /** Ideal qubit index -> degraded index (ChipTopology::npos = dead). */
    std::vector<std::size_t> newIndexOfQubit;
    /** Degraded qubit index -> ideal index. */
    std::vector<std::size_t> oldIndexOfQubit;
    /** Ideal coupler indices that were dropped (broken or dead end). */
    std::vector<std::size_t> removedCouplers;
};

/**
 * Rebuild @p chip without the dead qubits and broken couplers (couplers
 * with a dead endpoint are dropped too). Positions, base frequencies
 * and T1 survive. Throws ConfigError when a defect index is out of
 * range or every qubit is dead (nothing left to design).
 */
DegradedChip applyDefects(const ChipTopology &chip,
                          const ChipDefects &defects);

} // namespace youtiao

#endif // YOUTIAO_CHIP_DEFECTS_HPP
