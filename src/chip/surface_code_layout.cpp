#include "chip/surface_code_layout.hpp"

#include <string>

#include "common/error.hpp"

namespace youtiao {

SurfaceCodeLayout
makeSurfaceCodeLayout(std::size_t distance, double pitch_mm)
{
    requireConfig(distance >= 3 && distance % 2 == 1,
                  "surface code distance must be odd and >= 3");
    SurfaceCodeLayout layout;
    layout.distance = distance;
    layout.chip = ChipTopology("surface code d=" + std::to_string(distance));
    ChipTopology &chip = layout.chip;
    const auto d = static_cast<long>(distance);

    // Data qubits at even-even lattice coordinates (2i, 2j), row-major.
    auto data_index = [d](long i, long j) {
        return static_cast<std::size_t>(i * d + j);
    };
    auto place = [pitch_mm](long gx, long gy) {
        QubitInfo q;
        q.position = Point{0.5 * pitch_mm * static_cast<double>(gx),
                           0.5 * pitch_mm * static_cast<double>(gy)};
        return q;
    };
    for (long i = 0; i < d; ++i) {
        for (long j = 0; j < d; ++j) {
            chip.addQubit(place(2 * j, 2 * i));
            layout.roles.push_back(SurfaceCodeRole::Data);
        }
    }

    auto add_measure = [&](long gi, long gj, SurfaceCodeRole role,
                           std::initializer_list<std::pair<long, long>>
                               data_cells) {
        const std::size_t m = chip.addQubit(place(2 * gj + 1, 2 * gi + 1));
        layout.roles.push_back(role);
        for (const auto &[di, dj] : data_cells) {
            if (di >= 0 && di < d && dj >= 0 && dj < d)
                chip.addCoupler(m, data_index(di, dj));
        }
        return m;
    };

    // Interior plaquettes: centres (2i+1, 2j+1), i,j in [0, d-1), touching
    // the four surrounding data qubits. X/Z checkerboard by (i + j) parity.
    for (long i = 0; i + 1 < d; ++i) {
        for (long j = 0; j + 1 < d; ++j) {
            const SurfaceCodeRole role = (i + j) % 2 == 0
                                             ? SurfaceCodeRole::MeasureX
                                             : SurfaceCodeRole::MeasureZ;
            add_measure(i, j, role,
                        {{i, j}, {i, j + 1}, {i + 1, j}, {i + 1, j + 1}});
        }
    }

    // Boundary half-plaquettes, (d-1)/2 per edge. Top/bottom host X checks
    // (on alternating columns), left/right host Z checks, continuing the
    // interior checkerboard.
    for (long j = 0; j + 1 < d; ++j) {
        if (j % 2 == 1) // top edge, virtual row i = -1
            add_measure(-1, j, SurfaceCodeRole::MeasureX,
                        {{0, j}, {0, j + 1}});
        if (j % 2 == 0) // bottom edge, virtual row i = d-1
            add_measure(d - 1, j, SurfaceCodeRole::MeasureX,
                        {{d - 1, j}, {d - 1, j + 1}});
    }
    for (long i = 0; i + 1 < d; ++i) {
        if (i % 2 == 0) // left edge, virtual column j = -1
            add_measure(i, -1, SurfaceCodeRole::MeasureZ,
                        {{i, 0}, {i + 1, 0}});
        if (i % 2 == 1) // right edge, virtual column j = d-1
            add_measure(i, d - 1, SurfaceCodeRole::MeasureZ,
                        {{i, d - 1}, {i + 1, d - 1}});
    }

    requireInternal(chip.qubitCount() == 2 * distance * distance - 1,
                    "surface code qubit count mismatch");
    requireInternal(chip.couplerCount() == 4 * distance * (distance - 1),
                    "surface code coupler count mismatch");
    return layout;
}

std::size_t
idealCzLayersPerCycle()
{
    return 4;
}

} // namespace youtiao
