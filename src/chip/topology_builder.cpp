#include "chip/topology_builder.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <utility>

#include "common/error.hpp"
#include "graph/coloring.hpp"

namespace youtiao {

namespace {

QubitInfo
placedQubit(double x, double y, const BuilderOptions &opts)
{
    QubitInfo q;
    q.position = Point{x, y};
    q.t1Ns = opts.t1Ns;
    return q;
}

} // namespace

const char *
topologyFamilyName(TopologyFamily family)
{
    switch (family) {
      case TopologyFamily::Square:
        return "square";
      case TopologyFamily::Hexagon:
        return "hexagon";
      case TopologyFamily::HeavySquare:
        return "heavy square";
      case TopologyFamily::HeavyHexagon:
        return "heavy hexagon";
      case TopologyFamily::LowDensity:
        return "low-density";
      case TopologyFamily::SquareGrid:
        return "square grid";
    }
    return "unknown";
}

ChipTopology
makeSquareGrid(std::size_t rows, std::size_t cols,
               const BuilderOptions &opts)
{
    requireConfig(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    ChipTopology chip("square grid " + std::to_string(rows) + "x" +
                      std::to_string(cols));
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            chip.addQubit(placedQubit(static_cast<double>(c) * opts.pitchMm,
                                      static_cast<double>(r) * opts.pitchMm,
                                      opts));
        }
    }
    auto at = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                chip.addCoupler(at(r, c), at(r, c + 1));
            if (r + 1 < rows)
                chip.addCoupler(at(r, c), at(r + 1, c));
        }
    }
    Prng prng(opts.seed);
    assignPatternFrequencies(chip, prng);
    return chip;
}

ChipTopology
makeSquare(const BuilderOptions &opts)
{
    ChipTopology chip = makeSquareGrid(3, 3, opts);
    return chip;
}

ChipTopology
makeHexagon(std::size_t cell_rows, std::size_t cell_cols,
            const BuilderOptions &opts)
{
    requireConfig(cell_rows >= 1 && cell_cols >= 1,
                  "honeycomb needs positive cell dimensions");
    ChipTopology chip("hexagon " + std::to_string(cell_rows) + "x" +
                      std::to_string(cell_cols));

    // Build hexagon corners cell by cell and deduplicate shared vertices by
    // quantized coordinates. Pointy-top hexagons with side length = pitch.
    const double r = opts.pitchMm;
    const double sqrt3 = std::sqrt(3.0);
    std::map<std::pair<long, long>, std::size_t> vertex_of;
    auto key = [](double x, double y) {
        return std::make_pair(std::lround(x * 1e6), std::lround(y * 1e6));
    };
    auto vertex = [&](double x, double y) {
        const auto k = key(x, y);
        auto it = vertex_of.find(k);
        if (it != vertex_of.end())
            return it->second;
        const std::size_t q = chip.addQubit(placedQubit(x, y, opts));
        vertex_of.emplace(k, q);
        return q;
    };

    for (std::size_t i = 0; i < cell_rows; ++i) {
        for (std::size_t j = 0; j < cell_cols; ++j) {
            const double cx =
                (static_cast<double>(j) + 0.5 * static_cast<double>(i % 2)) *
                sqrt3 * r;
            const double cy = static_cast<double>(i) * 1.5 * r;
            std::size_t corner[6];
            for (int k6 = 0; k6 < 6; ++k6) {
                // Pointy-top: corners at 30, 90, ..., 330 degrees.
                const double ang =
                    (60.0 * k6 + 30.0) * std::numbers::pi / 180.0;
                corner[k6] =
                    vertex(cx + r * std::cos(ang), cy + r * std::sin(ang));
            }
            for (int k6 = 0; k6 < 6; ++k6) {
                const std::size_t a = corner[k6];
                const std::size_t b = corner[(k6 + 1) % 6];
                if (!chip.qubitGraph().hasEdge(a, b))
                    chip.addCoupler(a, b);
            }
        }
    }
    Prng prng(opts.seed);
    assignPatternFrequencies(chip, prng);
    return chip;
}

ChipTopology
makeHeavy(const ChipTopology &base, const BuilderOptions &opts)
{
    // Doubling the base coordinates keeps the inserted midpoint qubits at
    // the same physical pitch as the originals (IBM heavy lattices space
    // all transmons uniformly).
    ChipTopology chip("heavy " + base.name());
    for (const QubitInfo &q : base.qubits()) {
        QubitInfo scaled = q;
        scaled.position.x *= 2.0;
        scaled.position.y *= 2.0;
        chip.addQubit(scaled);
    }
    for (const CouplerInfo &c : base.couplers()) {
        const std::size_t mid = chip.addQubit(placedQubit(
            2.0 * c.position.x, 2.0 * c.position.y, opts));
        chip.addCoupler(c.qubitA, mid);
        chip.addCoupler(mid, c.qubitB);
    }
    Prng prng(opts.seed);
    assignPatternFrequencies(chip, prng);
    return chip;
}

ChipTopology
makeHeavySquare(const BuilderOptions &opts)
{
    return makeHeavy(makeSquareGrid(3, 3, opts), opts);
}

ChipTopology
makeHeavyHexagon(const BuilderOptions &opts)
{
    return makeHeavy(makeHexagon(1, 2, opts), opts);
}

ChipTopology
makeLowDensity(const BuilderOptions &opts)
{
    // Six 3-qubit columns; columns joined along the top row; one extra link
    // along the bottom row closes a single cycle. 18 qubits, 18 couplers.
    constexpr std::size_t rows = 3, cols = 6;
    ChipTopology chip("low-density");
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            chip.addQubit(placedQubit(static_cast<double>(c) * opts.pitchMm,
                                      static_cast<double>(r) * opts.pitchMm,
                                      opts));
        }
    }
    auto at = [](std::size_t r, std::size_t c) { return r * cols + c; };
    for (std::size_t c = 0; c < cols; ++c) {
        chip.addCoupler(at(0, c), at(1, c));
        chip.addCoupler(at(1, c), at(2, c));
    }
    for (std::size_t c = 0; c + 1 < cols; ++c)
        chip.addCoupler(at(0, c), at(0, c + 1));
    chip.addCoupler(at(2, 0), at(2, 1));
    Prng prng(opts.seed);
    assignPatternFrequencies(chip, prng);
    return chip;
}

ChipTopology
makeTopology(TopologyFamily family, std::size_t rows, std::size_t cols,
             const BuilderOptions &opts)
{
    switch (family) {
      case TopologyFamily::Square:
        return makeSquare(opts);
      case TopologyFamily::Hexagon:
        return makeHexagon(2, 2, opts);
      case TopologyFamily::HeavySquare:
        return makeHeavySquare(opts);
      case TopologyFamily::HeavyHexagon:
        return makeHeavyHexagon(opts);
      case TopologyFamily::LowDensity:
        return makeLowDensity(opts);
      case TopologyFamily::SquareGrid:
        return makeSquareGrid(rows, cols, opts);
    }
    throw ConfigError("unknown topology family");
}

void
assignPatternFrequencies(ChipTopology &chip, Prng &prng)
{
    if (chip.qubitCount() == 0)
        return;
    const auto colors = greedyColoring(chip.qubitGraph(),
                                       degreeDescendingOrder(
                                           chip.qubitGraph()));
    const std::size_t bands = std::max<std::size_t>(
        2, *std::max_element(colors.begin(), colors.end()) + 1);
    // Spread bands across the 4.2-6.8 GHz window; +/-30 MHz jitter models
    // fabrication spread while keeping neighbours detuned.
    const double lo = 4.2, hi = 6.8;
    const double step = (hi - lo) / static_cast<double>(bands);
    for (std::size_t q = 0; q < chip.qubitCount(); ++q) {
        const double center =
            lo + (static_cast<double>(colors[q]) + 0.5) * step;
        chip.qubit(q).baseFrequencyGHz = center + prng.uniform(-0.03, 0.03);
    }
}

} // namespace youtiao
