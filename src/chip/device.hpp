/**
 * @file
 * Plain device records making up a superconducting chip.
 *
 * A chip consists of Xmon-style transmon qubits and tunable couplers. Each
 * qubit carries three control lines in a dedicated-wiring system (XY, Z,
 * readout resonator tap); each coupler carries one Z line. YOUTIAO's whole
 * point is to multiplex those lines.
 */

#ifndef YOUTIAO_CHIP_DEVICE_HPP
#define YOUTIAO_CHIP_DEVICE_HPP

#include <cmath>
#include <cstddef>

namespace youtiao {

/** 2-D chip-plane coordinate in millimetres. */
struct Point
{
    double x = 0.0;
    double y = 0.0;
};

/** Euclidean distance between two chip-plane points (mm). */
inline double
distance(const Point &a, const Point &b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

/** A transmon qubit as placed on the chip. */
struct QubitInfo
{
    /** Placement on the sapphire substrate (mm). */
    Point position;
    /** Fabrication base frequency (GHz); retuned by frequency allocation. */
    double baseFrequencyGHz = 5.0;
    /** Relaxation time T1 (ns); the paper's chips average 90 us. */
    double t1Ns = 90e3;
};

/** A tunable coupler joining two qubits. */
struct CouplerInfo
{
    /** Placement on the substrate (mm), typically the qubit midpoint. */
    Point position;
    /** Endpoint qubit indices. */
    std::size_t qubitA = 0;
    std::size_t qubitB = 0;
};

/** The two device classes sharing the chip's Z-control plane. */
enum class DeviceKind { Qubit, Coupler };

} // namespace youtiao

#endif // YOUTIAO_CHIP_DEVICE_HPP
