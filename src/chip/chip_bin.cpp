#include "chip/chip_bin.hpp"

#include <fstream>
#include <limits>

#include "chip/chip_io.hpp"
#include "common/binfmt.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"

namespace youtiao {

namespace {

ChipTopology
chipFromReader(const binfmt::Reader &reader)
{
    // youtiao-chipbin-1 is the only payload layout so far; when a
    // version 2 changes a section, migrate the old sections forward
    // here (ExpressLRS-style: one shim per version, applied in order)
    // instead of branching readers all over the function.
    switch (reader.schemaVersion()) {
      case 1:
        break;
      default:
        throw InternalError("chip binary: unhandled schema version " +
                            std::to_string(reader.schemaVersion()));
    }

    const std::span<const char> name = reader.bytes("name");
    const std::span<const double> qx = reader.f64("qubit_x");
    const std::span<const double> qy = reader.f64("qubit_y");
    const std::span<const double> qf = reader.f64("qubit_freq");
    const std::span<const double> qt1 = reader.f64("qubit_t1");
    const std::span<const std::uint32_t> ca = reader.u32("coupler_a");
    const std::span<const std::uint32_t> cb = reader.u32("coupler_b");
    const std::span<const double> cx = reader.f64("coupler_x");
    const std::span<const double> cy = reader.f64("coupler_y");

    const std::size_t qubits = qx.size();
    requireConfig(qy.size() == qubits && qf.size() == qubits &&
                      qt1.size() == qubits,
                  "chip binary: qubit sections disagree on the qubit "
                  "count");
    requireConfig(qubits > 0, "chip binary: chip declares no qubits");
    const std::size_t couplers = ca.size();
    requireConfig(cb.size() == couplers && cx.size() == couplers &&
                      cy.size() == couplers,
                  "chip binary: coupler sections disagree on the "
                  "coupler count");

    ChipTopology chip(std::string(name.data(), name.size()));
    for (std::size_t q = 0; q < qubits; ++q) {
        QubitInfo info;
        info.position.x = qx[q];
        info.position.y = qy[q];
        info.baseFrequencyGHz = qf[q];
        info.t1Ns = qt1[q];
        requireConfig(info.baseFrequencyGHz > 0.0 && info.t1Ns > 0.0,
                      "chip binary: qubit frequency and T1 must be "
                      "positive");
        chip.addQubit(info);
    }
    for (std::size_t c = 0; c < couplers; ++c) {
        requireConfig(ca[c] < qubits && cb[c] < qubits,
                      "chip binary: coupler endpoint out of range");
        chip.addCoupler(ca[c], cb[c], Point{cx[c], cy[c]});
    }
    return chip;
}

} // namespace

std::vector<unsigned char>
chipToBinary(const ChipTopology &chip)
{
    const std::size_t qubits = chip.qubitCount();
    const std::size_t couplers = chip.couplerCount();
    requireConfig(qubits <= std::numeric_limits<std::uint32_t>::max(),
                  "chip binary: too many qubits for u32 coupler "
                  "endpoints");

    std::vector<double> qx(qubits), qy(qubits), qf(qubits), qt1(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
        const QubitInfo &info = chip.qubit(q);
        qx[q] = info.position.x;
        qy[q] = info.position.y;
        qf[q] = info.baseFrequencyGHz;
        qt1[q] = info.t1Ns;
    }
    std::vector<std::uint32_t> ca(couplers), cb(couplers);
    std::vector<double> cx(couplers), cy(couplers);
    for (std::size_t c = 0; c < couplers; ++c) {
        const CouplerInfo &info = chip.coupler(c);
        ca[c] = static_cast<std::uint32_t>(info.qubitA);
        cb[c] = static_cast<std::uint32_t>(info.qubitB);
        cx[c] = info.position.x;
        cy[c] = info.position.y;
    }

    binfmt::Writer writer(kChipBinMagic, kChipBinVersion);
    writer.addBytes("name", {chip.name().data(), chip.name().size()});
    writer.addF64("qubit_x", qx);
    writer.addF64("qubit_y", qy);
    writer.addF64("qubit_freq", qf);
    writer.addF64("qubit_t1", qt1);
    writer.addU32("coupler_a", ca);
    writer.addU32("coupler_b", cb);
    writer.addF64("coupler_x", cx);
    writer.addF64("coupler_y", cy);
    return writer.toBytes();
}

void
saveChipBinary(const std::string &path, const ChipTopology &chip)
{
    const std::vector<unsigned char> image = chipToBinary(chip);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    requireConfig(static_cast<bool>(out), "cannot write '" + path + "'");
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    requireConfig(static_cast<bool>(out),
                  "short write to '" + path + "'");
}

ChipTopology
chipFromBinary(const unsigned char *data, std::size_t size)
{
    const binfmt::Reader reader({data, size}, kChipBinMagic,
                                kChipBinVersion, "chip binary");
    return chipFromReader(reader);
}

ChipTopology
loadChipBinary(const std::string &path)
{
    const metrics::ScopedTimer timer("io.chip_load_binary");
    const binfmt::MappedFile file(path);
    try {
        return chipFromBinary(file.data(), file.size());
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

ChipTopology
loadChipAuto(const std::string &path)
{
    // Sniff the magic: binary chips always start with "YTCHPBIN",
    // which no text chip can (text files open with "youtiao-chip" or
    // a '#' comment).
    std::ifstream probe(path, std::ios::binary);
    requireConfig(static_cast<bool>(probe),
                  "cannot open '" + path + "' for reading");
    char magic[8] = {};
    probe.read(magic, sizeof magic);
    const bool is_binary =
        probe.gcount() == sizeof magic &&
        std::memcmp(magic, kChipBinMagic, sizeof magic) == 0;
    probe.close();
    if (is_binary)
        return loadChipBinary(path);
    const metrics::ScopedTimer timer("io.chip_load_text");
    std::ifstream in(path);
    requireConfig(static_cast<bool>(in),
                  "cannot open '" + path + "' for reading");
    try {
        return loadChip(in);
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

} // namespace youtiao
