/**
 * @file
 * Generators for the chip families evaluated in the paper.
 *
 * Table 2 evaluates five topologies: square (9 qubits), hexagon (16),
 * heavy-square (21), heavy-hexagon (21) and low-density (18). The fidelity
 * experiments additionally use 6x6 and 8x8 square-grid Xmon chips, and the
 * scalability study uses large NxM grids. All generators place devices on a
 * physical plane (mm) and assign fabrication base frequencies with a
 * neighbour-detuned pattern, standing in for the paper's self-developed
 * chips.
 */

#ifndef YOUTIAO_CHIP_TOPOLOGY_BUILDER_HPP
#define YOUTIAO_CHIP_TOPOLOGY_BUILDER_HPP

#include <cstdint>

#include "chip/topology.hpp"
#include "common/prng.hpp"

namespace youtiao {

/** The five Table 2 chip families plus the generic grid. */
enum class TopologyFamily
{
    Square,
    Hexagon,
    HeavySquare,
    HeavyHexagon,
    LowDensity,
    SquareGrid,
};

/** Name string used in reports ("square", "heavy hexagon", ...). */
const char *topologyFamilyName(TopologyFamily family);

/** Shared generator knobs. */
struct BuilderOptions
{
    /** Qubit pitch (mm); Xmon transmons are ~0.65 mm wide. */
    double pitchMm = 1.6;
    /** Average relaxation time (ns); the paper's chips reach 90 us. */
    double t1Ns = 90e3;
    /** Seed for base-frequency jitter. */
    std::uint64_t seed = 20250501;
};

/** rows x cols square lattice with nearest-neighbour couplers. */
ChipTopology makeSquareGrid(std::size_t rows, std::size_t cols,
                            const BuilderOptions &opts = {});

/** The paper's 3x3 square topology (9 qubits, 12 couplers). */
ChipTopology makeSquare(const BuilderOptions &opts = {});

/**
 * Honeycomb lattice of cell_rows x cell_cols hexagonal cells;
 * the default 2x2 yields the paper's 16-qubit / 19-coupler hexagon.
 */
ChipTopology makeHexagon(std::size_t cell_rows = 2,
                         std::size_t cell_cols = 2,
                         const BuilderOptions &opts = {});

/**
 * Heavy-square: the 3x3 square lattice with one extra qubit inserted on
 * every coupling (21 qubits, 24 couplers).
 */
ChipTopology makeHeavySquare(const BuilderOptions &opts = {});

/**
 * Heavy-hexagon: a 1x2 honeycomb with a qubit on every edge
 * (21 qubits, 22 couplers), IBM style.
 */
ChipTopology makeHeavyHexagon(const BuilderOptions &opts = {});

/**
 * Low-density arrangement (18 qubits, 18 couplers): six 3-qubit columns
 * joined along the top row, one redundant bottom link. Average degree 2,
 * matching the sparse layout the paper reports multiplexes best.
 */
ChipTopology makeLowDensity(const BuilderOptions &opts = {});

/** Dispatch by family; grid dimensions only apply to SquareGrid. */
ChipTopology makeTopology(TopologyFamily family,
                          std::size_t rows = 6, std::size_t cols = 6,
                          const BuilderOptions &opts = {});

/**
 * Insert an extra qubit in the middle of every coupling of @p base,
 * producing the "heavy" variant of any topology.
 */
ChipTopology makeHeavy(const ChipTopology &base,
                       const BuilderOptions &opts = {});

/**
 * Assign fabrication base frequencies: greedy-color the coupling graph so
 * neighbours land in different bands of [4, 7] GHz, with +/-30 MHz jitter.
 * Called by every generator; exposed for custom chips.
 */
void assignPatternFrequencies(ChipTopology &chip, Prng &prng);

} // namespace youtiao

#endif // YOUTIAO_CHIP_TOPOLOGY_BUILDER_HPP
