#include "chip/topology.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace youtiao {

ChipTopology::ChipTopology(std::string name)
    : name_(std::move(name))
{}

std::size_t
ChipTopology::addQubit(const QubitInfo &info)
{
    qubits_.push_back(info);
    qubitGraph_.addVertex();
    deviceGraphDirty_ = true;
    return qubits_.size() - 1;
}

std::size_t
ChipTopology::addCoupler(std::size_t qubit_a, std::size_t qubit_b)
{
    requireConfig(qubit_a < qubits_.size() && qubit_b < qubits_.size(),
                  "coupler endpoints must be existing qubits");
    const Point mid{
        0.5 * (qubits_[qubit_a].position.x + qubits_[qubit_b].position.x),
        0.5 * (qubits_[qubit_a].position.y + qubits_[qubit_b].position.y)};
    return addCoupler(qubit_a, qubit_b, mid);
}

std::size_t
ChipTopology::addCoupler(std::size_t qubit_a, std::size_t qubit_b,
                         const Point &at)
{
    requireConfig(qubit_a < qubits_.size() && qubit_b < qubits_.size(),
                  "coupler endpoints must be existing qubits");
    // addEdge rejects self-loops and duplicate couplings for us; the edge
    // index it returns is by construction the coupler index.
    const std::size_t edge = qubitGraph_.addEdge(qubit_a, qubit_b);
    requireInternal(edge == couplers_.size(),
                    "coupler/edge index correspondence broken");
    couplers_.push_back(CouplerInfo{at, qubit_a, qubit_b});
    deviceGraphDirty_ = true;
    return couplers_.size() - 1;
}

const QubitInfo &
ChipTopology::qubit(std::size_t index) const
{
    requireConfig(index < qubits_.size(), "qubit index out of range");
    return qubits_[index];
}

QubitInfo &
ChipTopology::qubit(std::size_t index)
{
    requireConfig(index < qubits_.size(), "qubit index out of range");
    return qubits_[index];
}

const CouplerInfo &
ChipTopology::coupler(std::size_t index) const
{
    requireConfig(index < couplers_.size(), "coupler index out of range");
    return couplers_[index];
}

DeviceKind
ChipTopology::deviceKind(std::size_t device) const
{
    requireConfig(device < deviceCount(), "device id out of range");
    return device < qubits_.size() ? DeviceKind::Qubit : DeviceKind::Coupler;
}

Point
ChipTopology::devicePosition(std::size_t device) const
{
    requireConfig(device < deviceCount(), "device id out of range");
    if (device < qubits_.size())
        return qubits_[device].position;
    return couplers_[device - qubits_.size()].position;
}

std::size_t
ChipTopology::qubitDeviceId(std::size_t q) const
{
    requireConfig(q < qubits_.size(), "qubit index out of range");
    return q;
}

std::size_t
ChipTopology::couplerDeviceId(std::size_t c) const
{
    requireConfig(c < couplers_.size(), "coupler index out of range");
    return qubits_.size() + c;
}

const Graph &
ChipTopology::deviceGraph() const
{
    if (deviceGraphDirty_) {
        Graph g(deviceCount());
        for (std::size_t c = 0; c < couplers_.size(); ++c) {
            const std::size_t device = qubits_.size() + c;
            g.addEdge(couplers_[c].qubitA, device);
            g.addEdge(device, couplers_[c].qubitB);
        }
        deviceGraph_ = std::move(g);
        deviceGraphDirty_ = false;
    }
    return deviceGraph_;
}

double
ChipTopology::physicalDistance(std::size_t qubit_a,
                               std::size_t qubit_b) const
{
    requireConfig(qubit_a < qubits_.size() && qubit_b < qubits_.size(),
                  "qubit index out of range");
    return distance(qubits_[qubit_a].position, qubits_[qubit_b].position);
}

Point
ChipTopology::boundingBox() const
{
    if (qubits_.empty())
        return Point{0.0, 0.0};
    double min_x = qubits_[0].position.x, max_x = min_x;
    double min_y = qubits_[0].position.y, max_y = min_y;
    auto fold = [&](const Point &p) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    };
    for (const QubitInfo &q : qubits_)
        fold(q.position);
    for (const CouplerInfo &c : couplers_)
        fold(c.position);
    return Point{max_x - min_x, max_y - min_y};
}

std::size_t
ChipTopology::couplerBetween(std::size_t qubit_a, std::size_t qubit_b) const
{
    requireConfig(qubit_a < qubits_.size() && qubit_b < qubits_.size(),
                  "qubit index out of range");
    for (const Incidence &inc : qubitGraph_.incidences(qubit_a)) {
        if (inc.vertex == qubit_b)
            return inc.edge;
    }
    return npos;
}

} // namespace youtiao
