/**
 * @file
 * Cryostat-level wiring counts and dollar costs.
 *
 * Count model (validated against the paper's own Tables 1 and 2):
 *
 *   Google-style dedicated wiring of Q qubits and C couplers:
 *     #XY = Q,  #Z = Q + C,  readout feeds = ceil(Q/8),
 *     readout DACs = ceil(Q/4),
 *     #DAC = #XY + #Z + readout DACs,
 *     #interfaces = coax = #XY + #Z + readout feeds.
 *
 *   YOUTIAO:
 *     #XY = FDM lines, #Z = TDM lines, plus DEMUX select lines carried on
 *     cheap twisted pair (2 per 1:4 switch, 1 per 1:2); select channels
 *     count as DACs and chip interfaces but not as coax.
 *
 * Dollar model, back-solved from the paper's cost columns (reproduces all
 * twenty cost cells within ~1%): coax $3,000; RF DAC channel $3,640;
 * twisted-pair select line + digital IO $200.
 */

#ifndef YOUTIAO_COST_COST_MODEL_HPP
#define YOUTIAO_COST_COST_MODEL_HPP

#include <cstddef>

#include "multiplex/fdm.hpp"
#include "multiplex/tdm.hpp"

namespace youtiao {

/** Unit prices and readout multiplexing capacities. */
struct CostModelConfig
{
    /** One coaxial line through all cryostat stages (USD). */
    double coaxUsd = 3000.0;
    /** One RF DAC channel (USD). */
    double rfDacUsd = 3640.0;
    /** One twisted-pair DEMUX select line incl. digital IO (USD). */
    double demuxSelectUsd = 200.0;
    /** Qubits per readout feedline (FDM). */
    std::size_t readoutFeedCapacity = 8;
    /** Qubits per readout DAC channel. */
    std::size_t readoutDacCapacity = 4;
};

/** Physical resource tally of one wiring plan. */
struct WiringCounts
{
    std::size_t xyLines = 0;
    std::size_t zLines = 0;
    std::size_t readoutFeeds = 0;
    std::size_t readoutDacs = 0;
    std::size_t demuxSelectLines = 0;
    std::size_t demux12 = 0;
    std::size_t demux14 = 0;

    /** Coax entering the cryostat: XY + Z + readout feeds. */
    std::size_t coax() const { return xyLines + zLines + readoutFeeds; }

    /** RF DAC channels driving the analog lines. */
    std::size_t rfDacs() const
    {
        return xyLines + zLines + readoutDacs;
    }

    /** All DAC/DIO channels: analog plus DEMUX digital selects. */
    std::size_t dacs() const { return rfDacs() + demuxSelectLines; }

    /** Chip interfaces: every analog line + every select line. */
    std::size_t interfaces() const
    {
        return coax() + demuxSelectLines;
    }
};

/** Dollar cost of a tally. */
double wiringCostUsd(const WiringCounts &counts,
                     const CostModelConfig &config = {});

/** Dedicated (Google-style) wiring for Q qubits and C couplers. */
WiringCounts dedicatedWiringCounts(std::size_t qubits, std::size_t couplers,
                                   const CostModelConfig &config = {});

/** Counts for a concrete YOUTIAO plan pair. */
WiringCounts multiplexedWiringCounts(std::size_t qubits,
                                     const FdmPlan &xy_plan,
                                     const TdmPlan &z_plan,
                                     const CostModelConfig &config = {});

/**
 * Analytic YOUTIAO estimate for large systems: Q qubits and C couplers,
 * XY FDM at @p fdm_capacity, and Z devices split so that
 * @p high_parallelism_count of them use 1:2 DEMUXes (rest 1:4), assuming
 * full DEMUX packing.
 */
WiringCounts multiplexedWiringCountsAnalytic(
    std::size_t qubits, std::size_t couplers, std::size_t fdm_capacity,
    std::size_t high_parallelism_count, const CostModelConfig &config = {});

} // namespace youtiao

#endif // YOUTIAO_COST_COST_MODEL_HPP
