#include "cost/cost_model.hpp"

#include "common/error.hpp"

namespace youtiao {

namespace {

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

double
wiringCostUsd(const WiringCounts &counts, const CostModelConfig &config)
{
    return config.coaxUsd * static_cast<double>(counts.coax()) +
           config.rfDacUsd * static_cast<double>(counts.rfDacs()) +
           config.demuxSelectUsd *
               static_cast<double>(counts.demuxSelectLines);
}

WiringCounts
dedicatedWiringCounts(std::size_t qubits, std::size_t couplers,
                      const CostModelConfig &config)
{
    requireConfig(qubits > 0, "chip has no qubits");
    WiringCounts counts;
    counts.xyLines = qubits;
    counts.zLines = qubits + couplers;
    counts.readoutFeeds = ceilDiv(qubits, config.readoutFeedCapacity);
    counts.readoutDacs = ceilDiv(qubits, config.readoutDacCapacity);
    return counts;
}

WiringCounts
multiplexedWiringCounts(std::size_t qubits, const FdmPlan &xy_plan,
                        const TdmPlan &z_plan,
                        const CostModelConfig &config)
{
    requireConfig(qubits > 0, "chip has no qubits");
    WiringCounts counts;
    counts.xyLines = xy_plan.lineCount();
    counts.zLines = z_plan.lineCount();
    counts.readoutFeeds = ceilDiv(qubits, config.readoutFeedCapacity);
    counts.readoutDacs = ceilDiv(qubits, config.readoutDacCapacity);
    counts.demuxSelectLines = z_plan.selectLineCount();
    counts.demux12 = z_plan.groupCountWithFanout(2);
    counts.demux14 = z_plan.groupCountWithFanout(4);
    return counts;
}

WiringCounts
multiplexedWiringCountsAnalytic(std::size_t qubits, std::size_t couplers,
                                std::size_t fdm_capacity,
                                std::size_t high_parallelism_count,
                                const CostModelConfig &config)
{
    requireConfig(qubits > 0, "chip has no qubits");
    requireConfig(fdm_capacity >= 1, "FDM capacity must be positive");
    const std::size_t devices = qubits + couplers;
    requireConfig(high_parallelism_count <= devices,
                  "more high-parallelism devices than devices");
    WiringCounts counts;
    counts.xyLines = ceilDiv(qubits, fdm_capacity);
    counts.demux12 = ceilDiv(high_parallelism_count, 2);
    counts.demux14 = ceilDiv(devices - high_parallelism_count, 4);
    counts.zLines = counts.demux12 + counts.demux14;
    counts.demuxSelectLines = counts.demux12 + 2 * counts.demux14;
    counts.readoutFeeds = ceilDiv(qubits, config.readoutFeedCapacity);
    counts.readoutDacs = ceilDiv(qubits, config.readoutDacCapacity);
    return counts;
}

} // namespace youtiao
