/**
 * @file
 * Reproduces paper Figure 13: FDM grouping fidelity on the 36-qubit chip.
 *
 * (a) Random single-qubit gates on 4-qubit FDM lines: YOUTIAO's
 *     noise-aware grouping + two-level allocation vs George et al.
 *     (in-line-only allocation) vs the unoptimized chip-local-cluster
 *     baseline (paper: 99.98% / 99.96% / ~2.25x YOUTIAO's error).
 * (b) Random single-qubit gate layers across the whole 36-qubit chip
 *     (9 FDM lines): fidelity vs layer count up to 100
 *     (paper: YOUTIAO 55.1% vs baseline 22.9% at 100 layers).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <numbers>

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "core/baselines.hpp"
#include "sim/fidelity_estimator.hpp"

namespace {

using namespace youtiao;

struct Setup
{
    ChipTopology chip = makeSquareGrid(6, 6);
    ChipCharacterization data;
    YoutiaoConfig config;
    YoutiaoDesign ours;
    BaselineDesign george;
    BaselineDesign unopt;

    Setup()
    {
        Prng prng(0xF13);
        data = characterizeChip(chip, prng);
        config.fdm.lineCapacity = 4;
        config.fit.forest.treeCount = 25;
        const YoutiaoDesigner designer(config);
        ours = designer.design(chip, data);
        george = designGeorgeFdm(chip, config);
        unopt = designUnoptimizedFdm(chip, config);
    }

    FidelityContext
    context(const FdmPlan &plan, const FrequencyPlan &freq) const
    {
        FidelityContext ctx;
        ctx.noise = NoiseModel(config.noise);
        ctx.xyCoupling = data.xyCrosstalk;
        ctx.zzMHz = data.zzCrosstalkMHz;
        ctx.frequencyGHz = freq.frequencyGHz;
        ctx.fdmLineOfQubit = plan.lineOfQubit;
        for (std::size_t q = 0; q < chip.qubitCount(); ++q)
            ctx.t1Ns.push_back(chip.qubit(q).t1Ns);
        return ctx;
    }
};

const Setup &
setup()
{
    static const Setup s;
    return s;
}

/** Per-gate fidelity of `layers` random XY layers on `qubits`. */
double
perGateFidelity(const std::vector<std::size_t> &qubits,
                const FidelityContext &ctx, std::size_t layers,
                Prng &prng)
{
    QuantumCircuit qc(setup().chip.qubitCount());
    std::size_t gates = 0;
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t q : qubits) {
            const double angle =
                prng.uniform(-std::numbers::pi, std::numbers::pi);
            if (prng.bernoulli(0.5))
                qc.rx(q, angle);
            else
                qc.ry(q, angle);
            ++gates;
        }
        qc.barrier();
    }
    const double total = estimateFidelity(qc, ctx).fidelity;
    return std::pow(total, 1.0 / static_cast<double>(gates));
}

/** Whole-chip fidelity of `layers` random XY layers on all 36 qubits. */
double
wholeChipFidelity(const FidelityContext &ctx, std::size_t layers,
                  Prng &prng)
{
    QuantumCircuit qc(setup().chip.qubitCount());
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t q = 0; q < setup().chip.qubitCount(); ++q) {
            const double angle =
                prng.uniform(-std::numbers::pi, std::numbers::pi);
            if (prng.bernoulli(0.5))
                qc.rx(q, angle);
            else
                qc.ry(q, angle);
        }
        qc.barrier();
    }
    return estimateFidelity(qc, ctx).fidelity;
}

void
printFigure()
{
    const Setup &s = setup();

    std::printf("Figure 13 (a): 1q-gate fidelity on 4-qubit FDM lines "
                "(10 layers, averaged over all lines)\n");
    bench::rule();
    auto average = [&](const FdmPlan &plan, const FrequencyPlan &freq) {
        const FidelityContext ctx = s.context(plan, freq);
        Prng prng(0xAB);
        double sum = 0.0;
        for (const auto &line : plan.lines) {
            Prng line_prng = prng.split();
            sum += perGateFidelity(line, ctx, 10, line_prng);
        }
        return sum / static_cast<double>(plan.lines.size());
    };
    const double f_ours = average(s.ours.xyPlan, s.ours.frequencyPlan);
    const double f_george =
        average(s.george.xyPlan, s.george.frequencyPlan);
    const double f_unopt = average(s.unopt.xyPlan, s.unopt.frequencyPlan);
    std::printf("YOUTIAO  (noise-aware grouping + 2-level alloc): %.4f%%\n",
                100.0 * f_ours);
    std::printf("George   (in-line-only allocation):              %.4f%%\n",
                100.0 * f_george);
    std::printf("baseline (local cluster, fabrication freqs):     %.4f%%\n",
                100.0 * f_unopt);
    std::printf("error ratios: George/YOUTIAO = %.2fx, "
                "baseline/YOUTIAO = %.2fx\n",
                (1.0 - f_george) / (1.0 - f_ours),
                (1.0 - f_unopt) / (1.0 - f_ours));
    std::printf("(paper: 99.98%% vs 99.96%%; baseline error 2.25x)\n\n");

    std::printf("Figure 13 (b): whole-chip fidelity vs random gate "
                "layers (36 qubits)\n");
    bench::rule();
    std::printf("%7s %10s %10s\n", "layers", "YOUTIAO", "baseline");
    const FidelityContext ours_ctx =
        s.context(s.ours.xyPlan, s.ours.frequencyPlan);
    const FidelityContext unopt_ctx =
        s.context(s.unopt.xyPlan, s.unopt.frequencyPlan);
    // Each sweep point seeds its own generators, so the rows fan out
    // across the pool without changing any number.
    const std::vector<std::size_t> layer_sweep{10, 20, 40, 60, 80, 100};
    const auto sweep_rows = bench::tableRows(
        layer_sweep, [&](std::size_t layers) {
            Prng pa(0xCD + layers), pb(0xCD + layers);
            return std::pair<double, double>(
                wholeChipFidelity(ours_ctx, layers, pa),
                wholeChipFidelity(unopt_ctx, layers, pb));
        });
    for (std::size_t i = 0; i < layer_sweep.size(); ++i) {
        std::printf("%7zu %9.1f%% %9.1f%%\n", layer_sweep[i],
                    100.0 * sweep_rows[i].first,
                    100.0 * sweep_rows[i].second);
    }
    std::printf("(paper at 100 layers: YOUTIAO 55.1%%, baseline 22.9%%)\n\n");
}

void
BM_FdmGrouping(benchmark::State &state)
{
    const Setup &s = setup();
    const SymmetricMatrix d = s.ours.xyModel.predictQubitMatrix(s.chip);
    FdmGroupingConfig cfg;
    cfg.lineCapacity = 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(groupFdm(d, cfg));
}
BENCHMARK(BM_FdmGrouping)->Unit(benchmark::kMicrosecond);

void
BM_FrequencyAllocation(benchmark::State &state)
{
    const Setup &s = setup();
    const NoiseModel noise(s.config.noise);
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocateFrequencies(
            s.ours.xyPlan, s.ours.predictedXy, noise, s.config.frequency));
    }
}
BENCHMARK(BM_FrequencyAllocation)->Unit(benchmark::kMicrosecond);

void
BM_WholeChipFidelityEstimate(benchmark::State &state)
{
    const Setup &s = setup();
    const FidelityContext ctx =
        s.context(s.ours.xyPlan, s.ours.frequencyPlan);
    Prng prng(1);
    for (auto _ : state) {
        Prng local = prng;
        benchmark::DoNotOptimize(wholeChipFidelity(ctx, 100, local));
    }
}
BENCHMARK(BM_WholeChipFidelityEstimate)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("fig13_fdm_fidelity", argc, argv);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
