/**
 * @file
 * Shared helpers for the reproduction benches: plan construction without
 * the (slow) random-forest fit for large chips, and table formatting.
 */

#ifndef YOUTIAO_BENCH_COMMON_HPP
#define YOUTIAO_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "chip/topology.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "core/config.hpp"
#include "core/youtiao.hpp"
#include "noise/crosstalk_data.hpp"

namespace youtiao::bench {

/**
 * Machine-readable perf record for one bench binary. Construct at the
 * top of main() (resets the metrics registry so the record covers only
 * this run); the destructor writes the merged phase timers and counters
 * to `BENCH_<name>.json` (schema "youtiao-perf-2", see
 * docs/FILE_FORMATS.md) in the current directory, or under
 * `$YOUTIAO_PERF_DIR` when set. Every subsequent optimization PR is
 * judged against these records.
 */
class PerfReport
{
  public:
    explicit PerfReport(std::string name)
        : name_(std::move(name))
    {
        metrics::Registry::global().reset();
    }

    ~PerfReport()
    {
        const char *dir = std::getenv("YOUTIAO_PERF_DIR");
        std::string path =
            dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "";
        path += "BENCH_" + name_ + ".json";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "warning: cannot write perf record %s\n",
                         path.c_str());
            return;
        }
        out << metrics::jsonReport(name_);
        std::fprintf(stderr, "perf record written to %s\n", path.c_str());
    }

    PerfReport(const PerfReport &) = delete;
    PerfReport &operator=(const PerfReport &) = delete;

  private:
    std::string name_;
};

/**
 * Fan a per-configuration computation (one chip size, one topology
 * family, one sweep point) across the shared thread pool and return the
 * rows in input order, so tables print identically to a serial run.
 * Honors `YOUTIAO_THREADS` (1 = serial) like every other parallel path.
 */
template <typename Item, typename Fn>
auto
tableRows(const std::vector<Item> &items, Fn &&fn)
{
    return parallelMap(items, std::forward<Fn>(fn));
}

/** Fit-free YOUTIAO design (Sections 4.2-4.4 on measured matrices),
 *  used by the count/cost reproductions where the random-forest stage is
 *  irrelevant. Thin wrapper over YoutiaoDesigner::designFromMeasurements
 *  kept for the benches' call sites. */
inline YoutiaoDesign
designFromMeasurements(const ChipTopology &chip,
                       const ChipCharacterization &data,
                       const YoutiaoConfig &config, double w_phy = 0.6)
{
    return YoutiaoDesigner(config).designFromMeasurements(chip, data,
                                                          w_phy);
}

/** "$413K" / "$1.25M" formatting used by the paper's tables. */
inline std::string
money(double usd)
{
    char buf[32];
    if (usd >= 1e6)
        std::snprintf(buf, sizeof buf, "$%.2fM", usd / 1e6);
    else
        std::snprintf(buf, sizeof buf, "$%.0fK", usd / 1e3);
    return buf;
}

inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace youtiao::bench

#endif // YOUTIAO_BENCH_COMMON_HPP
