/**
 * @file
 * Shared helpers for the reproduction benches: plan construction without
 * the (slow) random-forest fit for large chips, and table formatting.
 */

#ifndef YOUTIAO_BENCH_COMMON_HPP
#define YOUTIAO_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chip/topology.hpp"
#include "common/atomic_io.hpp"
#include "common/flight.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/runledger.hpp"
#include "common/trace.hpp"
#include "common/watchdog.hpp"
#include "core/config.hpp"
#include "core/youtiao.hpp"
#include "noise/crosstalk_data.hpp"

namespace youtiao::bench {

/**
 * Machine-readable perf record for one bench binary. Construct at the
 * top of main() (resets the metrics registry so the record covers only
 * this run); the destructor writes the merged phase timers, counters,
 * histograms, and resource samples to `BENCH_<name>.json` (schema
 * "youtiao-perf-5", see docs/FILE_FORMATS.md) in the current directory,
 * or under `$YOUTIAO_PERF_DIR` when set. When `$YOUTIAO_TRACE_DIR` is
 * set the run is also traced and the span timeline lands in
 * `TRACE_<name>.json` there. Every subsequent optimization PR is
 * judged against these records.
 *
 * The (name, argc, argv) constructor additionally arms the full
 * observability stack: the crash flight recorder
 * (`FLIGHT_bench_<name>.json` on a fatal signal), the YOUTIAO_WATCHDOG
 * resource sampler, and -- when `$YOUTIAO_RUN_LEDGER` is set -- a
 * run-ledger manifest ("youtiao-run-1") appended when the report is
 * destroyed, so bench history is trend-analyzable with
 * tools/perf_trend.
 */
class PerfReport
{
  public:
    explicit PerfReport(std::string name)
        : name_(std::move(name))
    {
        metrics::Registry::global().reset();
        const char *trace_dir = std::getenv("YOUTIAO_TRACE_DIR");
        if (trace_dir != nullptr && *trace_dir != '\0') {
            tracePath_ =
                std::string(trace_dir) + "/TRACE_" + name_ + ".json";
            trace::Tracer::global().enable();
        }
    }

    PerfReport(std::string name, int argc, char **argv)
        : PerfReport(std::move(name))
    {
        flight::install(("bench_" + name_).c_str());
        watchdog::startFromEnv();
        recorder_.emplace("bench_" + name_, argc, argv);
    }

    ~PerfReport()
    {
        // Final resource samples must land before the record is
        // serialized; stop() keeps the collected series readable.
        if (watchdog::running())
            watchdog::stop();
        if (!tracePath_.empty()) {
            trace::Tracer::global().disable();
            if (trace::Tracer::global().writeJson(tracePath_))
                log::info("trace written", {{"path", tracePath_}});
            else
                log::warn("cannot write trace", {{"path", tracePath_}});
        }
        const char *dir = std::getenv("YOUTIAO_PERF_DIR");
        std::string path =
            dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "";
        path += "BENCH_" + name_ + ".json";
        // Atomic write: a bench killed mid-record leaves the previous
        // BENCH_*.json (or none), never a torn one for perf_trend.
        if (!io::atomicWriteFileNoThrow(path, metrics::jsonReport(name_))) {
            log::warn("cannot write perf record", {{"path", path}});
            return;
        }
        log::info("perf record written", {{"path", path}});
        // Keep the human-readable breadcrumb the bench scripts grep for.
        std::fprintf(stderr, "perf record written to %s\n", path.c_str());
    }

    PerfReport(const PerfReport &) = delete;
    PerfReport &operator=(const PerfReport &) = delete;

  private:
    std::string name_;
    std::string tracePath_;
    // Destroyed after the dtor body ran, so the manifest (written by
    // Recorder::finish) sees the final phase timings and peak RSS.
    std::optional<runledger::Recorder> recorder_;
};

/**
 * Fan a per-configuration computation (one chip size, one topology
 * family, one sweep point) across the shared thread pool and return the
 * rows in input order, so tables print identically to a serial run.
 * Honors `YOUTIAO_THREADS` (1 = serial) like every other parallel path.
 */
template <typename Item, typename Fn>
auto
tableRows(const std::vector<Item> &items, Fn &&fn)
{
    return parallelMap(items, std::forward<Fn>(fn));
}

/** Fit-free YOUTIAO design (Sections 4.2-4.4 on measured matrices),
 *  used by the count/cost reproductions where the random-forest stage is
 *  irrelevant. Thin wrapper over YoutiaoDesigner::designFromMeasurements
 *  kept for the benches' call sites. */
inline YoutiaoDesign
designFromMeasurements(const ChipTopology &chip,
                       const ChipCharacterization &data,
                       const YoutiaoConfig &config, double w_phy = 0.6)
{
    return YoutiaoDesigner(config).designFromMeasurements(chip, data,
                                                          w_phy);
}

/** "$413K" / "$1.25M" formatting used by the paper's tables. */
inline std::string
money(double usd)
{
    char buf[32];
    if (usd >= 1e6)
        std::snprintf(buf, sizeof buf, "$%.2fM", usd / 1e6);
    else
        std::snprintf(buf, sizeof buf, "$%.0fK", usd / 1e3);
    return buf;
}

inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace youtiao::bench

#endif // YOUTIAO_BENCH_COMMON_HPP
