/**
 * @file
 * Reproduces paper Table 2: cryostat-level and chip-level wiring of five
 * topologies (square, hexagon, heavy square, heavy hexagon, low-density),
 * Google-style dedicated wiring vs YOUTIAO: #XY/#Z lines, DEMUX control
 * lines, #DAC, wiring cost, chip interfaces and routed area.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "core/baselines.hpp"
#include "routing/chip_router.hpp"

namespace {

using namespace youtiao;

const std::vector<TopologyFamily> kFamilies{
    TopologyFamily::Square, TopologyFamily::Hexagon,
    TopologyFamily::HeavySquare, TopologyFamily::HeavyHexagon,
    TopologyFamily::LowDensity};

struct SideMetrics
{
    WiringCounts counts;
    double costUsd = 0.0;
    std::size_t interfaces = 0;
    double areaMm2 = 0.0;
};

SideMetrics
googleSide(const ChipTopology &chip, const YoutiaoConfig &config)
{
    const BaselineDesign design = designGoogleWiring(chip, config);
    SideMetrics side;
    side.counts = design.counts;
    side.costUsd = design.costUsd;
    const auto nets = buildWiringNets(chip, design.xyPlan, design.zPlan,
                                      design.readoutPlan);
    const ChipRoutingResult route = routeChip(chip, nets);
    side.interfaces = design.counts.interfaces();
    side.areaMm2 = route.routingAreaMm2;
    return side;
}

SideMetrics
youtiaoSide(const ChipTopology &chip, const YoutiaoConfig &config)
{
    Prng prng(0x7AB1E2 + chip.qubitCount());
    const ChipCharacterization data = characterizeChip(chip, prng);
    const YoutiaoDesign design =
        bench::designFromMeasurements(chip, data, config);
    SideMetrics side;
    side.counts = design.counts;
    side.costUsd = design.costUsd;
    const FdmPlan readout =
        groupFdmLocalCluster(chip, config.cost.readoutFeedCapacity);
    const auto nets =
        buildWiringNets(chip, design.xyPlan, design.zPlan, readout);
    const ChipRoutingResult route = routeChip(chip, nets);
    side.interfaces = design.counts.interfaces();
    side.areaMm2 = route.routingAreaMm2;
    return side;
}

struct FamilyRow
{
    std::size_t qubits = 0;
    SideMetrics google;
    SideMetrics ours;
};

void
printTable()
{
    const YoutiaoConfig config;
    std::printf("Table 2: evaluation of the quantum wiring system\n");
    bench::rule(100);
    std::printf("%-14s %6s | %5s %5s %6s %5s %9s %7s %7s | level\n",
                "topology", "#qubit", "#XY", "#Z", "#DEMUX", "#DAC",
                "cost", "#iface", "area");
    bench::rule(100);
    const std::vector<FamilyRow> rows =
        bench::tableRows(kFamilies, [&](TopologyFamily family) {
            const ChipTopology chip = makeTopology(family);
            FamilyRow row;
            row.qubits = chip.qubitCount();
            row.google = googleSide(chip, config);
            row.ours = youtiaoSide(chip, config);
            return row;
        });
    for (std::size_t f = 0; f < kFamilies.size(); ++f) {
        const FamilyRow &row = rows[f];
        const SideMetrics &google = row.google;
        const SideMetrics &ours = row.ours;
        std::printf("%-14s %6zu | %5zu %5zu %6zu %5zu %9s %7zu %6.2f | "
                    "Google\n",
                    topologyFamilyName(kFamilies[f]), row.qubits,
                    google.counts.xyLines, google.counts.zLines,
                    google.counts.demuxSelectLines, google.counts.dacs(),
                    bench::money(google.costUsd).c_str(),
                    google.interfaces, google.areaMm2);
        std::printf("%-14s %6s | %5zu %5zu %6zu %5zu %9s %7zu %6.2f | "
                    "YOUTIAO (%.1fx cost, %.1fx area)\n",
                    "", "", ours.counts.xyLines, ours.counts.zLines,
                    ours.counts.demuxSelectLines, ours.counts.dacs(),
                    bench::money(ours.costUsd).c_str(), ours.interfaces,
                    ours.areaMm2, google.costUsd / ours.costUsd,
                    google.areaMm2 / ours.areaMm2);
    }
    bench::rule(100);
    std::printf("paper: ~3.1x cryostat-level cost reduction, ~1.3x "
                "routing-area reduction, ~1.6x fewer interfaces\n\n");
}

void
BM_YoutiaoDesign(benchmark::State &state)
{
    const ChipTopology chip =
        makeTopology(kFamilies[static_cast<std::size_t>(state.range(0))]);
    Prng prng(1);
    const ChipCharacterization data = characterizeChip(chip, prng);
    const YoutiaoConfig config;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::designFromMeasurements(chip, data, config));
    }
}
BENCHMARK(BM_YoutiaoDesign)->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void
BM_RouteChip(benchmark::State &state)
{
    const ChipTopology chip =
        makeTopology(kFamilies[static_cast<std::size_t>(state.range(0))]);
    const BaselineDesign design = designGoogleWiring(chip);
    const auto nets = buildWiringNets(chip, design.xyPlan, design.zPlan,
                                      design.readoutPlan);
    for (auto _ : state)
        benchmark::DoNotOptimize(routeChip(chip, nets));
}
BENCHMARK(BM_RouteChip)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("table2_wiring", argc, argv);
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
