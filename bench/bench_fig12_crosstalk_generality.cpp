/**
 * @file
 * Reproduces paper Figure 12: generality of the crosstalk model across
 * similar chips. (a) Models trained on the 6x6 and the 8x8 chip produce
 * predicted-noise distributions with low Jensen-Shannon divergence
 * (paper: ~0.06). (b) FDM grouping the 8x8 chip with the 6x6-trained
 * (transferred) model loses little fidelity vs the natively trained model
 * (paper: 99.94% vs 99.96% on 10 layers of random XY gates per qubit).
 * Also ablates the multi-path topological metric d_top = n*l against
 * plain shortest-path hops.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "common/statistics.hpp"
#include "multiplex/frequency_allocation.hpp"
#include "graph/shortest_path.hpp"
#include "sim/fidelity_estimator.hpp"

namespace {

using namespace youtiao;

CrosstalkModel
trainOn(const ChipTopology &chip, std::uint64_t seed)
{
    Prng prng(seed);
    const ChipCharacterization data = characterizeChip(chip, prng);
    CrosstalkFitConfig cfg;
    cfg.forest.treeCount = 25;
    return CrosstalkModel::fit(data.xySamples, cfg);
}

std::vector<double>
predictionsOn(const CrosstalkModel &model, const ChipTopology &chip)
{
    const SymmetricMatrix m = model.predictQubitMatrix(chip);
    std::vector<double> out;
    for (std::size_t i = 0; i < m.size(); ++i)
        for (std::size_t j = i + 1; j < m.size(); ++j)
            out.push_back(std::log10(m(i, j)));
    return out;
}

/** Per-gate fidelity of 10 random-XY layers on the first `scale` qubits
 *  grouped into 4-qubit FDM lines under `model`. */
double
fdmFidelityAtScale(const ChipTopology &chip, const CrosstalkModel &model,
                   const ChipCharacterization &truth, std::size_t scale,
                   Prng &prng)
{
    YoutiaoConfig config;
    config.fdm.lineCapacity = 4;
    config.fit.forest.treeCount = 25;
    const YoutiaoDesigner designer(config);
    const YoutiaoDesign design = designer.designWithModels(chip, model,
                                                           model);
    FidelityContext ctx = designer.makeFidelityContext(chip, design);
    // Judge against the chip's true crosstalk, not the model's belief.
    ctx.xyCoupling = truth.xyCrosstalk;
    ctx.zzMHz = truth.zzCrosstalkMHz;

    QuantumCircuit qc(chip.qubitCount());
    std::size_t gates = 0;
    for (int layer = 0; layer < 10; ++layer) {
        for (std::size_t q = 0; q < scale; ++q) {
            if (prng.bernoulli(0.5))
                qc.rx(q, prng.uniform(-3.14, 3.14));
            else
                qc.ry(q, prng.uniform(-3.14, 3.14));
            ++gates;
        }
        qc.barrier();
    }
    const double total = estimateFidelity(qc, ctx).fidelity;
    return std::pow(total, 1.0 / static_cast<double>(gates));
}

void
printFigure()
{
    const ChipTopology small = makeSquareGrid(6, 6);
    const ChipTopology big = makeSquareGrid(8, 8);
    const CrosstalkModel model6 = trainOn(small, 0x66);
    const CrosstalkModel model8 = trainOn(big, 0x88);

    std::printf("Figure 12 (a): predicted-noise similarity across chips\n");
    bench::rule();
    const auto pred6 = predictionsOn(model6, big);
    const auto pred8 = predictionsOn(model8, big);
    const double lo = std::min(minimum(pred6), minimum(pred8));
    const double hi = std::max(maximum(pred6), maximum(pred8));
    const auto h6 = normalizedHistogram(pred6, lo, hi, 24);
    const auto h8 = normalizedHistogram(pred8, lo, hi, 24);
    std::printf("JS divergence (6x6-trained vs 8x8-trained, on the 8x8 "
                "chip): %.3f  (paper: ~0.06)\n\n",
                jsDivergence(h6, h8));

    std::printf("Figure 12 (b): FDM fidelity with the transferred model\n");
    bench::rule();
    std::printf("%8s %22s %22s\n", "#qubits", "6x6 model (transfer)",
                "8x8 model (native)");
    Prng gates_prng(0xF12);
    ChipCharacterization truth8;
    {
        Prng prng(0x88);
        truth8 = characterizeChip(big, prng);
    }
    for (std::size_t scale : {8, 16, 32, 64}) {
        Prng pa = gates_prng.split();
        Prng pb = pa; // identical circuits for both models
        const double transfer =
            fdmFidelityAtScale(big, model6, truth8, scale, pa);
        const double native =
            fdmFidelityAtScale(big, model8, truth8, scale, pb);
        std::printf("%8zu %21.3f%% %21.3f%%\n", scale, 100.0 * transfer,
                    100.0 * native);
    }
    std::printf("(paper: transferred ~99.94%%, native ~99.96%%)\n\n");

    std::printf("Ablation: multi-path d_top = n*l vs plain hop distance\n");
    bench::rule();
    // When crosstalk depends on path multiplicity (the paper's
    // observation on square-topology chips, baked into the synthetic
    // law), a hop-only feature misfits: compare cross-validated errors.
    Prng prng(0x99);
    const ChipCharacterization data = characterizeChip(big, prng);
    std::vector<CrosstalkSample> hop_samples = data.xySamples;
    for (CrosstalkSample &s : hop_samples) {
        const std::size_t hop =
            hopDistance(big.qubitGraph(), s.qubitA, s.qubitB);
        s.topologicalDistance = static_cast<double>(hop);
    }
    CrosstalkFitConfig fit_cfg;
    fit_cfg.forest.treeCount = 25;
    const CrosstalkModel multi_model =
        CrosstalkModel::fit(data.xySamples, fit_cfg);
    const CrosstalkModel hop_model =
        CrosstalkModel::fit(hop_samples, fit_cfg);
    std::printf("CV error (log-space MSE), multi-path d_top: %.5f "
                "(w_phy = %.1f)\n", multi_model.cvError(),
                multi_model.wPhy());
    std::printf("CV error (log-space MSE), hop-only d_top:   %.5f "
                "(w_phy = %.1f)\n", hop_model.cvError(),
                hop_model.wPhy());
    std::printf("(on regular grids the two metrics are nearly "
                "interchangeable; the paper's robustness argument "
                "concerns irregular real-chip data)\n\n");
}

void
BM_CrosstalkModelFit(benchmark::State &state)
{
    const ChipTopology chip = makeSquareGrid(6, 6);
    Prng prng(1);
    const ChipCharacterization data = characterizeChip(chip, prng);
    CrosstalkFitConfig cfg;
    cfg.forest.treeCount = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(CrosstalkModel::fit(data.xySamples, cfg));
}
BENCHMARK(BM_CrosstalkModelFit)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);

void
BM_PredictQubitMatrix(benchmark::State &state)
{
    const ChipTopology chip = makeSquareGrid(8, 8);
    const CrosstalkModel model = trainOn(chip, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predictQubitMatrix(chip));
}
BENCHMARK(BM_PredictQubitMatrix)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("fig12_crosstalk_generality", argc, argv);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
