/**
 * @file
 * Reproduces paper Table 1: wiring results of fault-tolerant (surface
 * code) quantum chips for Google-style dedicated wiring vs YOUTIAO, over
 * code distances 3..11: #XY lines, #Z lines, wiring cost, and two-qubit
 * gate depth of a 25-cycle error-correction circuit.
 *
 * Absolute depth differs from the paper (they report ~24-27 CZ "depth
 * units" per cycle, our scheduler counts 4-6 CZ layers per cycle); the
 * comparison that matters -- YOUTIAO within ~1.2x of dedicated wiring --
 * is preserved. See EXPERIMENTS.md.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "chip/surface_code_layout.hpp"
#include "circuit/surface_code_circuit.hpp"
#include "core/baselines.hpp"
#include "core/fault_tolerant.hpp"
#include "cost/cost_model.hpp"
#include "multiplex/tdm_scheduler.hpp"

namespace {

using namespace youtiao;

constexpr std::size_t kCycles = 25;

struct Row
{
    std::size_t distance, xy, z, depth;
    double cost;
};

Row
googleRow(std::size_t distance)
{
    const SurfaceCodeLayout layout = makeSurfaceCodeLayout(distance);
    const WiringCounts counts = dedicatedWiringCounts(
        layout.chip.qubitCount(), layout.chip.couplerCount());
    const QuantumCircuit qc = makeSurfaceCodeCycles(layout, kCycles);
    const Schedule s =
        scheduleWithTdm(qc, layout.chip, dedicatedZPlan(layout.chip));
    return Row{distance, counts.xyLines, counts.zLines,
               s.twoQubitDepth(qc), wiringCostUsd(counts)};
}

Row
youtiaoRow(std::size_t distance)
{
    const SurfaceCodeLayout layout = makeSurfaceCodeLayout(distance);
    const YoutiaoConfig config;
    const SurfaceCodeWiring design =
        designSurfaceCodeWiring(layout, config);
    const QuantumCircuit qc = makeSurfaceCodeCycles(layout, kCycles);
    const Schedule s = scheduleWithTdm(qc, layout.chip, design.zPlan);
    return Row{distance, design.counts.xyLines, design.counts.zLines,
               s.twoQubitDepth(qc), design.costUsd};
}

void
printTable()
{
    std::printf("Table 1: wiring results of fault-tolerant quantum "
                "chip (%zu EC cycles)\n", kCycles);
    bench::rule();
    std::printf("%-9s %8s %8s %8s %12s %14s\n", "system", "distance",
                "#XY line", "#Z line", "wiring cost", "2q gate depth");
    bench::rule();
    double google_cost_11 = 0.0, ours_cost_11 = 0.0;
    std::size_t google_depth = 0, ours_depth = 0;
    for (std::size_t d : {3, 5, 7, 9, 11}) {
        const Row row = googleRow(d);
        std::printf("%-9s %8zu %8zu %8zu %12s %14zu\n", "Google", d,
                    row.xy, row.z, bench::money(row.cost).c_str(),
                    row.depth);
        if (d == 11)
            google_cost_11 = row.cost;
        google_depth += row.depth;
    }
    bench::rule();
    for (std::size_t d : {3, 5, 7, 9, 11}) {
        const Row row = youtiaoRow(d);
        std::printf("%-9s %8zu %8zu %8zu %12s %14zu\n", "YOUTIAO", d,
                    row.xy, row.z, bench::money(row.cost).c_str(),
                    row.depth);
        if (d == 11)
            ours_cost_11 = row.cost;
        ours_depth += row.depth;
    }
    bench::rule();
    std::printf("wiring-cost reduction at d=11: %.2fx (paper: 2.35x, "
                "$6.43M -> $2.84M)\n", google_cost_11 / ours_cost_11);
    std::printf("2q-depth ratio YOUTIAO/Google:  %.2fx (paper: <= 1.18x)\n\n",
                static_cast<double>(ours_depth) /
                    static_cast<double>(google_depth));
}

void
BM_SurfaceCodeLayout(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            makeSurfaceCodeLayout(static_cast<std::size_t>(state.range(0))));
    }
}
BENCHMARK(BM_SurfaceCodeLayout)->Arg(3)->Arg(7)->Arg(11);

void
BM_YoutiaoFaultTolerantDesign(benchmark::State &state)
{
    const SurfaceCodeLayout layout =
        makeSurfaceCodeLayout(static_cast<std::size_t>(state.range(0)));
    const YoutiaoConfig config;
    for (auto _ : state) {
        benchmark::DoNotOptimize(designSurfaceCodeWiring(layout, config));
    }
}
BENCHMARK(BM_YoutiaoFaultTolerantDesign)->Arg(3)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMillisecond);

void
BM_TdmScheduleEcCycles(benchmark::State &state)
{
    const SurfaceCodeLayout layout =
        makeSurfaceCodeLayout(static_cast<std::size_t>(state.range(0)));
    const YoutiaoConfig config;
    const SurfaceCodeWiring design =
        designSurfaceCodeWiring(layout, config);
    const QuantumCircuit qc = makeSurfaceCodeCycles(layout, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scheduleWithTdm(qc, layout.chip, design.zPlan));
    }
}
BENCHMARK(BM_TdmScheduleEcCycles)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("table1_fault_tolerant", argc, argv);
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
