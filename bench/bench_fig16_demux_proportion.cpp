/**
 * @file
 * Reproduces paper Figure 16: proportions of 1:2 vs 1:4 cryo-DEMUXes
 * across the five chip topologies as the parallelism threshold theta
 * sweeps. Square topologies (highest parallelism) keep the largest 1:2
 * share; raising theta trades gate freedom for Z-line multiplexing depth.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "multiplex/parallelism_index.hpp"

namespace {

using namespace youtiao;

const std::vector<TopologyFamily> kFamilies{
    TopologyFamily::Square, TopologyFamily::Hexagon,
    TopologyFamily::HeavySquare, TopologyFamily::HeavyHexagon,
    TopologyFamily::LowDensity};

void
printFigure()
{
    std::printf("Figure 16: cryo-DEMUX proportions vs parallelism "
                "threshold theta\n");
    bench::rule(86);
    std::printf("%-14s |", "topology");
    for (double theta : {2.0, 3.0, 4.0, 5.0, 6.0})
        std::printf("   theta=%-4.0f |", theta);
    std::printf("\n%-14s |", "");
    for (int i = 0; i < 5; ++i)
        std::printf("  1:2    1:4 |");
    std::printf("\n");
    bench::rule(86);
    for (TopologyFamily family : kFamilies) {
        const ChipTopology chip = makeTopology(family);
        Prng prng(0xF16);
        const ChipCharacterization data = characterizeChip(chip, prng);
        std::printf("%-14s |", topologyFamilyName(family));
        for (double theta : {2.0, 3.0, 4.0, 5.0, 6.0}) {
            TdmGroupingConfig cfg;
            cfg.parallelismThreshold = theta;
            const TdmPlan plan =
                groupTdm(chip, data.zzCrosstalkMHz, cfg);
            const double total =
                static_cast<double>(plan.groupCountWithFanout(2) +
                                    plan.groupCountWithFanout(4));
            const double frac12 =
                total == 0.0
                    ? 0.0
                    : static_cast<double>(plan.groupCountWithFanout(2)) /
                          total;
            std::printf(" %4.0f%%  %4.0f%% |", 100.0 * frac12,
                        100.0 * (1.0 - frac12));
        }
        std::printf("\n");
    }
    bench::rule(86);
    std::printf("(paper: square keeps the largest 1:2 share; theta "
                "trades Z-line efficiency vs parallelism)\n\n");
}

void
BM_ParallelismIndices(benchmark::State &state)
{
    const ChipTopology chip = makeSquareGrid(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(parallelismIndices(chip));
}
BENCHMARK(BM_ParallelismIndices)->Arg(6)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void
BM_TdmGrouping(benchmark::State &state)
{
    const ChipTopology chip = makeSquareGrid(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(0)));
    Prng prng(1);
    const ChipCharacterization data = characterizeChip(chip, prng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            groupTdm(chip, data.zzCrosstalkMHz, {}));
    }
}
BENCHMARK(BM_TdmGrouping)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("fig16_demux_proportion", argc, argv);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
