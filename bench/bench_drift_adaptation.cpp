/**
 * @file
 * Drift-adaptation evaluation the paper never runs: a 36-qubit chip's
 * FDM wiring replayed over a seeded two-day drift trace (TLS arrivals,
 * band masks, crosstalk random walk) under three policies -- the static
 * allocation the paper ships, seeded FHSS hopping, and incremental
 * re-allocation with the designRobust ladder as backstop.
 *
 * The binary exits nonzero if the replay violates its contract:
 * re-allocation must beat the static allocation on end-of-trace
 * fidelity and must finish with zero spectrum-DRC violations.
 *
 * Robustness flags (stripped before google-benchmark sees argv):
 * --deadline SECONDS cancels the replay cooperatively (exit 3);
 * --checkpoint DIR journals every finished epoch per policy; --resume
 * replays a matching journal, landing on a byte-identical figure (the
 * crash drill pins this).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/cli_parse.hpp"
#include "common/flight.hpp"

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "core/drift_adaptation.hpp"

namespace {

using namespace youtiao;

struct Setup
{
    ChipTopology chip = makeSquareGrid(6, 6);
    ChipCharacterization data;
    YoutiaoConfig config;
    YoutiaoDesign design;
    DriftTrace trace;

    Setup()
    {
        Prng prng(0xD41F);
        data = characterizeChip(chip, prng);
        design = YoutiaoDesigner(config)
                     .designFromMeasurements(chip, data);
        DriftConfig drift;
        drift.epochs = 48;
        drift.seed = 0xD21F7;
        trace = simulateDrift(chip.qubitCount(), drift);
    }

    DriftAdaptationResult
    replay(DriftPolicy policy) const
    {
        DriftAdaptationConfig adapt;
        adapt.policy = policy;
        const DriftAdapter adapter(config, adapt);
        return adapter.run(chip, design, data, trace);
    }
};

const Setup &
setup()
{
    static const Setup s;
    return s;
}

/** Prints the comparison and returns true when the contract holds. */
bool
printFigure()
{
    const Setup &s = setup();
    std::printf("Drift adaptation: 36-qubit chip, %zu epochs (%.0f h), "
                "%zu TLS defects in trace\n",
                s.trace.config.epochs,
                s.trace.config.epochs * s.trace.config.hoursPerEpoch,
                s.trace.defects.size());
    bench::rule();

    // The three replays share the trace and the per-epoch circuits, so
    // they fan out without changing a digit of any series.
    const std::vector<DriftPolicy> policies{DriftPolicy::Static,
                                            DriftPolicy::Hopping,
                                            DriftPolicy::Reallocate};
    const std::vector<DriftAdaptationResult> results = bench::tableRows(
        policies, [&](DriftPolicy policy) { return s.replay(policy); });
    std::fputs(driftAdaptationReport(results).c_str(), stdout);

    const DriftAdaptationResult &flat = results[0];
    const DriftAdaptationResult &adapted = results[2];
    const bool beats_static =
        adapted.endFidelity() > flat.endFidelity();
    const bool drc_clean = adapted.totalViolations() == 0;
    std::printf("\nend-of-trace fidelity: static %.2f%% -> reallocate "
                "%.2f%% (%s)\n",
                100.0 * flat.endFidelity(),
                100.0 * adapted.endFidelity(),
                beats_static ? "improved" : "NOT IMPROVED");
    std::printf("reallocate spectrum DRC: %zu violations (%s)\n",
                adapted.totalViolations(),
                drc_clean ? "clean" : "DIRTY");
    return beats_static && drc_clean;
}

void
BM_SimulateDrift(benchmark::State &state)
{
    DriftConfig drift;
    drift.epochs = 48;
    for (auto _ : state)
        benchmark::DoNotOptimize(simulateDrift(36, drift));
}
BENCHMARK(BM_SimulateDrift)->Unit(benchmark::kMicrosecond);

void
BM_BuildHopPlan(benchmark::State &state)
{
    const Setup &s = setup();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildHopPlan(s.design.xyPlan, s.design.frequencyPlan));
    }
}
BENCHMARK(BM_BuildHopPlan)->Unit(benchmark::kMicrosecond);

void
BM_ReallocateReplay(benchmark::State &state)
{
    const Setup &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(s.replay(DriftPolicy::Reallocate));
}
BENCHMARK(BM_ReallocateReplay)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Strip the robustness flags before google-benchmark parses argv.
    std::string checkpoint_dir;
    bool resume = false;
    double deadline_s = 0.0;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--checkpoint")
            checkpoint_dir = next();
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--deadline")
            deadline_s =
                youtiao::parsePositiveDoubleArg(next(), "--deadline");
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    if (resume && checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "error: --resume requires --checkpoint DIR\n");
        return 2;
    }

    youtiao::bench::PerfReport perf("drift_adaptation", argc, argv);
    if (deadline_s > 0.0)
        youtiao::cancel::armDeadline(deadline_s);
    if (!checkpoint_dir.empty()) {
        // The figure is fully pinned by its hard-coded seeds, so the
        // manifest only needs the tool name to refuse foreign journals.
        youtiao::checkpoint::open(checkpoint_dir, "bench_drift_adaptation",
                                  {{"seed", "0xD41F/0xD21F7"}}, resume);
    }
    bool ok = false;
    try {
        ok = printFigure();
    } catch (const youtiao::cancel::Cancelled &e) {
        youtiao::checkpoint::close();
        youtiao::flight::dump("cancelled");
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    }
    // Close before the benchmark loops: BM_ReallocateReplay would churn
    // the per-epoch journal on every iteration otherwise.
    youtiao::checkpoint::close();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return ok ? 0 : 1;
}
