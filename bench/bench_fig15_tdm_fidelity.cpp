/**
 * @file
 * Reproduces paper Figure 15: circuit fidelity of the five benchmarks
 * under the three wiring systems (paper: YOUTIAO 1.23x better than
 * Acharya's local clustering, 1.06x below Google's dedicated wiring).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "circuit/benchmarks.hpp"
#include "circuit/transpiler.hpp"
#include "core/baselines.hpp"
#include "multiplex/tdm_scheduler.hpp"

#include <cmath>

namespace {

using namespace youtiao;

struct System
{
    const char *name;
    TdmPlan zPlan;
    FidelityContext ctx;
};

struct Setup
{
    ChipTopology chip = makeSquareGrid(6, 6);
    ChipCharacterization data;
    YoutiaoConfig config;
    std::vector<System> systems;

    Setup()
    {
        Prng prng(0xF15);
        data = characterizeChip(chip, prng);
        config.fit.forest.treeCount = 25;
        // Depth-oriented grouping (see bench_ablations G); the paper's
        // Fig 14/15 regime.
        config.tdm.minGroupScore = 0.5;
        config.tdm.noisyZzMHz = 1e9;

        const YoutiaoDesigner designer(config);
        const YoutiaoDesign ours = designer.design(chip, data);
        FidelityContext ours_ctx = designer.makeFidelityContext(chip, ours);
        ours_ctx.xyCoupling = data.xyCrosstalk; // judge with the truth
        ours_ctx.zzMHz = data.zzCrosstalkMHz;

        const BaselineDesign google =
            designGoogleWiring(chip, config, &data.xyCrosstalk);
        const BaselineDesign acharya =
            designAcharyaTdm(chip, config, &data.xyCrosstalk);

        systems.push_back(System{
            "Google", google.zPlan,
            makeBaselineFidelityContext(chip, google, data.xyCrosstalk,
                                        data.zzCrosstalkMHz, config)});
        systems.push_back(System{"YOUTIAO", ours.zPlan, ours_ctx});
        systems.push_back(System{
            "Acharya", acharya.zPlan,
            makeBaselineFidelityContext(chip, acharya, data.xyCrosstalk,
                                        data.zzCrosstalkMHz, config)});
    }
};

const Setup &
setup()
{
    static const Setup s;
    return s;
}

QuantumCircuit
physicalBenchmark(BenchmarkKind kind)
{
    Prng prng(0x51 + static_cast<std::uint64_t>(kind));
    // Benchmark instances use 12 of the 36 qubits (the paper's 8-qubit
    // DJ motivating example scale), mapped onto the chip's BFS patch.
    const QuantumCircuit logical = makeBenchmark(kind, 12, prng);
    return transpile(logical, setup().chip).physical;
}

void
printFigure()
{
    std::printf("Figure 15: circuit fidelity across 5 benchmarks\n");
    bench::rule();
    std::printf("%-8s %10s %10s %10s %12s\n", "circuit", "Google",
                "YOUTIAO", "Acharya", "YOUTIAO+safe");
    bench::rule();
    double log_g = 0.0, log_y = 0.0, log_a = 0.0, log_s = 0.0;
    for (BenchmarkKind kind : allBenchmarks()) {
        const QuantumCircuit qc = physicalBenchmark(kind);
        double f[3];
        for (std::size_t s = 0; s < 3; ++s) {
            const System &sys = setup().systems[s];
            const Schedule schedule =
                scheduleWithTdm(qc, setup().chip, sys.zPlan);
            f[s] = estimateFidelity(qc, schedule, sys.ctx).fidelity;
        }
        // "Safe" mode: additionally serialize high-ZZ gate pairs the
        // grouping did not already force apart.
        const System &ours = setup().systems[1];
        const Schedule safe_schedule = scheduleWithTdmAndNoise(
            qc, setup().chip, ours.zPlan, setup().data.zzCrosstalkMHz,
            setup().config.tdm.noisyZzMHz);
        const double f_safe =
            estimateFidelity(qc, safe_schedule, ours.ctx).fidelity;
        log_g += std::log(f[0]);
        log_y += std::log(f[1]);
        log_a += std::log(f[2]);
        log_s += std::log(f_safe);
        std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n",
                    benchmarkName(kind), 100.0 * f[0], 100.0 * f[1],
                    100.0 * f[2], 100.0 * f_safe);
    }
    bench::rule();
    const double n = static_cast<double>(allBenchmarks().size());
    std::printf("geomean fidelity ratios: YOUTIAO/Acharya = %.2fx "
                "(paper 1.23x), Google/YOUTIAO = %.2fx (paper 1.06x), "
                "safe/YOUTIAO = %.2fx\n\n",
                std::exp((log_y - log_a) / n),
                std::exp((log_g - log_y) / n),
                std::exp((log_s - log_y) / n));
    std::printf("(safe mode serializes residual high-ZZ pairs; at this "
                "noise scale the extra exposure\n outweighs the avoided "
                "crosstalk -- the grouping already absorbs the worst "
                "pairs)\n\n");
}

void
BM_FidelityEstimate(benchmark::State &state)
{
    const QuantumCircuit qc =
        physicalBenchmark(static_cast<BenchmarkKind>(state.range(0)));
    const System &sys = setup().systems[1];
    const Schedule schedule =
        scheduleWithTdm(qc, setup().chip, sys.zPlan);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimateFidelity(qc, schedule, sys.ctx));
    }
}
BENCHMARK(BM_FidelityEstimate)->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("fig15_tdm_fidelity", argc, argv);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
