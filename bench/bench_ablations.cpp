/**
 * @file
 * Ablations of YOUTIAO's design choices (DESIGN.md section 6):
 *
 *  A. generative chip partition vs geometric slabs;
 *  B. two-level frequency allocation: swap-pass contribution;
 *  C. TDM grouping: noisy non-parallelism on/off;
 *  D. workload-aware ("dynamic") activity grouping vs topology-only;
 *  E. pulse-level validation of the Lorentzian leakage model;
 *  F. serviceability: blast radius of a single failed line, dedicated vs
 *     multiplexed wiring (the cost of sharing the paper leaves implicit);
 *  G. the group-purity floor: sweeping minGroupScore trades Z lines for
 *     TDM depth on a maximally parallel workload.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/failure_analysis.hpp"
#include "chip/topology_builder.hpp"
#include "circuit/benchmarks.hpp"
#include "circuit/transpiler.hpp"
#include "multiplex/activity_grouping.hpp"
#include "multiplex/frequency_allocation.hpp"
#include "noise/equivalent_distance.hpp"
#include "partition/generative_partition.hpp"
#include "multiplex/tdm_scheduler.hpp"
#include "sim/pulse.hpp"

namespace {

using namespace youtiao;

void
ablationPartition()
{
    std::printf("A. generative partition vs geometric slabs (6x6 chip)\n");
    bench::rule();
    const ChipTopology chip = makeSquareGrid(6, 6);
    const SymmetricMatrix d = equivalentDistanceMatrix(
        qubitPhysicalDistanceMatrix(chip),
        qubitTopologicalDistanceMatrix(chip), 0.6, 0.4);
    Prng prng(1);
    PartitionConfig cfg;
    cfg.regionCount = 4;
    const ChipPartition generative =
        generativePartition(chip, d, cfg, prng);
    const ChipPartition slabs = geometricPartition(chip, 4);
    std::printf("mean intra-region equivalent distance: generative %.3f, "
                "geometric %.3f\n",
                meanIntraRegionDistance(generative, d),
                meanIntraRegionDistance(slabs, d));
    FdmGroupingConfig fdm;
    fdm.lineCapacity = 5;
    std::printf("FDM intra-group distance after stage-3 grouping: "
                "generative %.3f, geometric %.3f\n",
                meanIntraGroupDistance(
                    groupFdmPartitioned(generative, d, fdm), d),
                meanIntraGroupDistance(
                    groupFdmPartitioned(slabs, d, fdm), d));
    std::printf("(regular grids have no irregularity to exploit; the "
                "advantage appears on irregular layouts:)\n");

    // A dumbbell chip: two dense 3x3 clusters joined by a 4-qubit chain.
    // Geometric x-slabs cut through a cluster; the generative partition
    // splits at the bridge.
    ChipTopology bell("dumbbell");
    auto add_cluster = [&bell](double x0, double y0) {
        std::vector<std::size_t> ids;
        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < 3; ++c) {
                QubitInfo q;
                q.position = Point{x0 + 1.6 * c, y0 + 1.6 * r};
                ids.push_back(bell.addQubit(q));
            }
        }
        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < 3; ++c) {
                if (c < 2)
                    bell.addCoupler(ids[r * 3 + c], ids[r * 3 + c + 1]);
                if (r < 2)
                    bell.addCoupler(ids[r * 3 + c], ids[r * 3 + c + 3]);
            }
        }
        return ids;
    };
    const auto bottom = add_cluster(0.0, 0.0);
    const auto top = add_cluster(0.0, 11.2);
    std::size_t prev = bottom[7]; // top edge of the bottom cluster
    for (int i = 0; i < 4; ++i) {
        QubitInfo q;
        q.position = Point{1.6, 3.2 + 1.28 * (i + 1)};
        const std::size_t mid = bell.addQubit(q);
        bell.addCoupler(prev, mid);
        prev = mid;
    }
    bell.addCoupler(prev, top[1]); // bottom edge of the top cluster
    const SymmetricMatrix bd = equivalentDistanceMatrix(
        qubitPhysicalDistanceMatrix(bell),
        qubitTopologicalDistanceMatrix(bell), 0.6, 0.4);
    Prng bell_prng(11);
    PartitionConfig bell_cfg;
    bell_cfg.regionCount = 2;
    const ChipPartition bell_gen =
        generativePartition(bell, bd, bell_cfg, bell_prng);
    const ChipPartition bell_slab = geometricPartition(bell, 2);
    std::printf("dumbbell chip intra-region distance: generative %.3f, "
                "geometric %.3f\n\n",
                meanIntraRegionDistance(bell_gen, bd),
                meanIntraRegionDistance(bell_slab, bd));
}

void
ablationSwapPasses()
{
    std::printf("B. frequency allocation: swap-pass contribution\n");
    bench::rule();
    const ChipTopology chip = makeSquareGrid(6, 6);
    Prng prng(2);
    const ChipCharacterization data = characterizeChip(chip, prng);
    const SymmetricMatrix d = equivalentDistanceMatrix(
        qubitPhysicalDistanceMatrix(chip),
        qubitTopologicalDistanceMatrix(chip), 0.6, 0.4);
    FdmGroupingConfig fdm;
    fdm.lineCapacity = 5;
    const FdmPlan plan = groupFdm(d, fdm);
    const NoiseModel noise;
    for (std::size_t passes : {0, 1, 3, 8}) {
        FrequencyAllocationConfig cfg;
        cfg.swapPasses = passes;
        const FrequencyPlan fp =
            allocateFrequencies(plan, data.xyCrosstalk, noise, cfg);
        std::printf("swap passes = %zu: crosstalk cost %.3e\n", passes,
                    fp.crosstalkCost);
    }
    std::printf("\n");
}

void
ablationNoisyNonParallelism()
{
    std::printf("C. TDM grouping: noisy non-parallelism on/off "
                "(6x6 chip, VQC-12)\n");
    bench::rule();
    const ChipTopology chip = makeSquareGrid(6, 6);
    Prng prng(3);
    const ChipCharacterization data = characterizeChip(chip, prng);
    Prng circuit_prng(4);
    const QuantumCircuit physical =
        transpile(makeVqc(12, 4, circuit_prng), chip).physical;
    for (double threshold : {0.05, 1e9}) {
        TdmGroupingConfig cfg;
        cfg.noisyZzMHz = threshold;
        const TdmPlan plan = groupTdm(chip, data.zzCrosstalkMHz, cfg);
        const Schedule s = scheduleWithTdm(physical, chip, plan);
        std::printf("noisy channel %s: %zu Z lines, 2q depth %zu\n",
                    threshold > 1.0 ? "OFF (topology only)"
                                    : "ON  (zz > 0.05 MHz)",
                    plan.lineCount(), s.twoQubitDepth(physical));
    }
    std::printf("\n");
}

void
ablationDynamicGrouping()
{
    std::printf("D. workload-aware (dynamic) grouping vs topology-only "
                "(ISING-16 on 4x4)\n");
    bench::rule();
    const ChipTopology chip = makeSquareGrid(4, 4);
    const QuantumCircuit physical =
        transpile(makeIsing(16, 3), chip).physical;
    Prng prng(5);
    const SymmetricMatrix zz =
        characterizeChip(chip, prng).zzCrosstalkMHz;
    DeviceActivity activity(chip);
    activity.observe(physical, scheduleCircuit(physical));

    const TdmPlan topo = groupTdm(chip, zz);
    const TdmPlan dyn = groupTdmByActivity(chip, activity);
    const std::size_t base_depth =
        scheduleCircuit(physical).twoQubitDepth(physical);
    std::printf("%-22s %8s %10s\n", "grouping", "Z lines", "2q depth");
    std::printf("%-22s %8zu %10zu\n", "none (dedicated)",
                chip.deviceCount(), base_depth);
    std::printf("%-22s %8zu %10zu\n", "topology (Sec 4.3)",
                topo.lineCount(),
                scheduleWithTdm(physical, chip, topo)
                    .twoQubitDepth(physical));
    std::printf("%-22s %8zu %10zu\n", "dynamic (activity)",
                dyn.lineCount(),
                scheduleWithTdm(physical, chip, dyn)
                    .twoQubitDepth(physical));
    std::printf("\n");
}

void
ablationPulseValidation()
{
    std::printf("E. Lorentzian leakage model vs time-domain pulse "
                "integration (25 ns pi pulse)\n");
    bench::rule();
    const NoiseModel nm;
    std::printf("%12s %14s %14s\n", "detuning", "RK4 excitation",
                "Lorentzian");
    for (double df : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
        std::printf("%9.0f MHz %14.4f %14.4f\n", 1e3 * df,
                    spectatorExcitation(df), nm.spectralOverlap(df));
    }
    std::printf("effective half-power linewidth (RK4): %.1f MHz "
                "(model: %.1f MHz)\n\n",
                1e3 * effectiveLinewidthGHz(),
                1e3 * nm.config().driveLinewidthGHz);
}

void
ablationFailureImpact()
{
    std::printf("F. blast radius of one failed line (6x6 chip)\n");
    bench::rule();
    const ChipTopology chip = makeSquareGrid(6, 6);
    Prng prng(17);
    const ChipCharacterization data = characterizeChip(chip, prng);
    YoutiaoConfig config;
    config.fit.forest.treeCount = 10;
    const YoutiaoDesign ours = YoutiaoDesigner(config).design(chip, data);
    YoutiaoDesign dedicated = ours;
    dedicated.xyPlan = groupFdmLocalCluster(chip, 1);
    dedicated.zPlan = dedicatedZPlan(chip);
    const FailureImpact fm = analyzeFailureImpact(chip, ours);
    const FailureImpact fd = analyzeFailureImpact(chip, dedicated);
    std::printf("%-22s %8s %12s %10s\n", "wiring", "lines",
                "mean qubits", "worst");
    std::printf("%-22s %8zu %12.2f %10zu\n", "dedicated",
                fd.totalLines, fd.meanQubitsLost, fd.worstQubitsLost);
    std::printf("%-22s %8zu %12.2f %10zu\n", "YOUTIAO multiplexed",
                fm.totalLines, fm.meanQubitsLost, fm.worstQubitsLost);
    std::printf("(fewer lines to break, but each failure hits more "
                "qubits -- the serviceability trade-off)\n\n");
}

void
ablationGroupPurity()
{
    std::printf("G. group-purity floor: Z lines vs depth on brickwork "
                "VQC-12 (6x6 chip)\n");
    bench::rule();
    const ChipTopology chip = makeSquareGrid(6, 6);
    Prng prng(23);
    const ChipCharacterization data = characterizeChip(chip, prng);
    Prng circuit_prng(24);
    const QuantumCircuit physical =
        transpile(makeVqc(12, 4, circuit_prng), chip).physical;
    const std::size_t ideal =
        scheduleCircuit(physical).twoQubitDepth(physical);
    std::printf("%-10s %-10s %8s %10s %12s\n", "floor", "noisy ch.",
                "Z lines", "2q depth", "depth ratio");
    for (bool noisy : {true, false}) {
        for (double floor : {0.0, 0.5, 1.0}) {
            TdmGroupingConfig cfg;
            cfg.minGroupScore = floor;
            if (!noisy)
                cfg.noisyZzMHz = 1e9; // topology conflicts only
            const TdmPlan plan = groupTdm(chip, data.zzCrosstalkMHz, cfg);
            const std::size_t depth =
                scheduleWithTdm(physical, chip, plan)
                    .twoQubitDepth(physical);
            std::printf("%-10.1f %-10s %8zu %10zu %11.2fx\n", floor,
                        noisy ? "on" : "off", plan.lineCount(), depth,
                        static_cast<double>(depth) /
                            static_cast<double>(ideal));
        }
    }
    std::printf("(floor 0 fills groups for the Table 1/2 line counts; "
                "floor 1 + noisy off admits only\n provably-serial "
                "devices, recovering the dedicated-wiring depth; noisy-on "
                "groups trade\n depth for serialized high-crosstalk "
                "pairs, the paper's Fig 15 mechanism)\n\n");
}

void
BM_ActivityObserve(benchmark::State &state)
{
    const ChipTopology chip = makeSquareGrid(6, 6);
    Prng prng(9);
    const QuantumCircuit physical =
        transpile(makeVqc(36, 4, prng), chip).physical;
    const Schedule s = scheduleCircuit(physical);
    for (auto _ : state) {
        DeviceActivity activity(chip);
        activity.observe(physical, s);
        benchmark::DoNotOptimize(activity.observedLayers());
    }
}
BENCHMARK(BM_ActivityObserve)->Unit(benchmark::kMicrosecond);

void
BM_PulseIntegration(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(spectatorExcitation(0.1));
}
BENCHMARK(BM_PulseIntegration)->Unit(benchmark::kMicrosecond);

void
BM_GenerativePartition(benchmark::State &state)
{
    const ChipTopology chip = makeSquareGrid(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(0)));
    const SymmetricMatrix d = equivalentDistanceMatrix(
        qubitPhysicalDistanceMatrix(chip),
        qubitTopologicalDistanceMatrix(chip), 0.6, 0.4);
    for (auto _ : state) {
        Prng prng(7);
        benchmark::DoNotOptimize(
            generativePartition(chip, d, {}, prng));
    }
}
BENCHMARK(BM_GenerativePartition)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("ablations", argc, argv);
    ablationPartition();
    ablationSwapPasses();
    ablationNoisyNonParallelism();
    ablationDynamicGrouping();
    ablationPulseValidation();
    ablationFailureImpact();
    ablationGroupPurity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
