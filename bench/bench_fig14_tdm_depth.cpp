/**
 * @file
 * Reproduces paper Figure 14: two-qubit gate depth of the five benchmark
 * circuits (VQC, ISING, DJ, QFT, QKNN) on the 36-qubit chip under three
 * wiring systems: Google-style dedicated wiring, YOUTIAO's non-parallel-
 * aware TDM grouping, and Acharya-style legal local clustering
 * (paper: YOUTIAO 1.23x shallower than Acharya, only 1.05x over Google).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "chip/topology_builder.hpp"
#include "circuit/benchmarks.hpp"
#include "circuit/transpiler.hpp"
#include "core/baselines.hpp"
#include "multiplex/tdm_scheduler.hpp"

namespace {

using namespace youtiao;

struct Setup
{
    ChipTopology chip = makeSquareGrid(6, 6);
    ChipCharacterization data;
    YoutiaoConfig config;
    TdmPlan google;
    TdmPlan ours;
    TdmPlan acharya;

    Setup()
    {
        Prng prng(0xF14);
        data = characterizeChip(chip, prng);
        // Depth-oriented grouping (see bench_ablations G): admit only
        // mostly-serial devices, topological conflicts only. This is the
        // regime in which the paper's 1.05x depth overhead is reachable;
        // the Table 1/2 line counts use the fill-to-capacity setting.
        config.tdm.minGroupScore = 0.5;
        config.tdm.noisyZzMHz = 1e9;
        google = dedicatedZPlan(chip);
        ours = bench::designFromMeasurements(chip, data, config).zPlan;
        acharya = groupTdmLocalCluster(
            chip, config.tdm.lowParallelismFanout, config.tdm);
    }
};

const Setup &
setup()
{
    static const Setup s;
    return s;
}

QuantumCircuit
physicalBenchmark(BenchmarkKind kind)
{
    Prng prng(0x42 + static_cast<std::uint64_t>(kind));
    // Benchmark instances use 12 of the 36 qubits (the paper's 8-qubit
    // DJ motivating example scale), mapped onto the chip's BFS patch.
    const QuantumCircuit logical = makeBenchmark(kind, 12, prng);
    return transpile(logical, setup().chip).physical;
}

void
printFigure()
{
    std::printf("Figure 14: two-qubit gate depth across 5 benchmarks\n");
    bench::rule();
    std::printf("%-8s %10s %10s %10s %18s\n", "circuit", "Google",
                "YOUTIAO", "Acharya", "YOUTIAO vs (G, A)");
    bench::rule();
    double sum_g = 0.0, sum_y = 0.0, sum_a = 0.0;
    for (BenchmarkKind kind : allBenchmarks()) {
        const QuantumCircuit qc = physicalBenchmark(kind);
        const std::size_t g =
            scheduleWithTdm(qc, setup().chip, setup().google)
                .twoQubitDepth(qc);
        const std::size_t y =
            scheduleWithTdm(qc, setup().chip, setup().ours)
                .twoQubitDepth(qc);
        const std::size_t a =
            scheduleWithTdm(qc, setup().chip, setup().acharya)
                .twoQubitDepth(qc);
        sum_g += static_cast<double>(g);
        sum_y += static_cast<double>(y);
        sum_a += static_cast<double>(a);
        std::printf("%-8s %10zu %10zu %10zu %9.2fx %6.2fx\n",
                    benchmarkName(kind), g, y, a,
                    static_cast<double>(y) / static_cast<double>(g),
                    static_cast<double>(a) / static_cast<double>(y));
    }
    bench::rule();
    std::printf("geomean-ish totals: YOUTIAO/Google = %.2fx "
                "(paper 1.05x), Acharya/YOUTIAO = %.2fx (paper 1.23x)\n",
                sum_y / sum_g, sum_a / sum_y);
    std::printf("(depth-oriented grouping: %zu Z lines on %zu devices; "
                "the Table 2 fill-to-capacity setting gives fewer lines "
                "at more depth -- see bench_ablations G)\n\n",
                setup().ours.lineCount(),
                setup().chip.deviceCount());
}

void
BM_TranspileBenchmark(benchmark::State &state)
{
    const auto kind = static_cast<BenchmarkKind>(state.range(0));
    Prng prng(7);
    const QuantumCircuit logical =
        makeBenchmark(kind, setup().chip.qubitCount(), prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(transpile(logical, setup().chip));
}
BENCHMARK(BM_TranspileBenchmark)->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void
BM_TdmConstrainedSchedule(benchmark::State &state)
{
    const QuantumCircuit qc =
        physicalBenchmark(static_cast<BenchmarkKind>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scheduleWithTdm(qc, setup().chip, setup().ours));
    }
}
BENCHMARK(BM_TdmConstrainedSchedule)->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("fig14_tdm_depth", argc, argv);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
