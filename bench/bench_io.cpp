/**
 * @file
 * Chip I/O bench: text vs binary load time at 1k and 10k qubits.
 *
 * Writes the same grid chip in both formats, loads each back a fixed
 * number of times (equal repeat counts per size so the per-phase totals
 * are directly comparable), verifies the loaded chips are identical,
 * and prints the speedup table. The io.text_load_* / io.bin_load_*
 * phases land in BENCH_io.json (tools/perf_check tracks them against
 * bench/baselines/BENCH_io.json); repeat counts are chosen so every
 * phase clears perf_check's 0.01 s timing floor.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "chip/chip_bin.hpp"
#include "chip/chip_io.hpp"
#include "core/scalability.hpp"

namespace {

using namespace youtiao;

struct IoRow
{
    std::size_t qubits = 0;
    std::size_t repeats = 0;
    std::size_t textBytes = 0;
    std::size_t binaryBytes = 0;
    double textSeconds = 0.0;
    double binarySeconds = 0.0;
};

IoRow
measureSize(std::size_t qubits, std::size_t repeats,
            const std::string &label)
{
    IoRow row;
    row.qubits = qubits;
    row.repeats = repeats;

    const ChipTopology chip = makeGridWithQubitCount(qubits);
    const std::string text_path = "bench_io_chip_" + label + ".txt";
    const std::string bin_path = "bench_io_chip_" + label + ".bin";
    {
        std::ofstream out(text_path);
        saveChip(out, chip);
    }
    saveChipBinary(bin_path, chip);
    row.textBytes = chipToString(chip).size();
    row.binaryBytes = chipToBinary(chip).size();

    // Both loaders run through loadChipAuto, so the magic sniff is part
    // of the measured cost on both sides.
    const std::string text_phase = "io.text_load_" + label;
    const std::string bin_phase = "io.bin_load_" + label;
    ChipTopology from_text, from_binary;
    {
        const metrics::ScopedTimer timer(text_phase);
        for (std::size_t r = 0; r < repeats; ++r) {
            from_text = loadChipAuto(text_path);
            benchmark::DoNotOptimize(from_text);
        }
    }
    {
        const metrics::ScopedTimer timer(bin_phase);
        for (std::size_t r = 0; r < repeats; ++r) {
            from_binary = loadChipAuto(bin_path);
            benchmark::DoNotOptimize(from_binary);
        }
    }
    row.textSeconds =
        metrics::Registry::global().phases()[text_phase].seconds;
    row.binarySeconds =
        metrics::Registry::global().phases()[bin_phase].seconds;

    // Round-trip audit: the binary chip must be the text chip, byte
    // for byte, once rendered back to canonical text.
    if (chipToString(from_text) != chipToString(from_binary)) {
        std::fprintf(stderr,
                     "FATAL: text and binary loads disagree at %zu "
                     "qubits\n",
                     qubits);
        std::exit(1);
    }
    std::remove(text_path.c_str());
    std::remove(bin_path.c_str());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::PerfReport perf("io", argc, argv);

    std::printf("Chip I/O: text vs binary load\n");
    bench::rule();
    std::printf("%8s %8s %10s %10s %11s %11s %8s\n", "#qubits",
                "repeats", "text B", "binary B", "text s", "binary s",
                "speedup");
    // Equal repeat counts per size keep the phase totals comparable;
    // counts are sized so even the fast binary loads clear the 0.01 s
    // perf_check floor.
    const IoRow rows[] = {
        measureSize(1000, 100, "1k"),
        measureSize(10000, 12, "10k"),
    };
    for (const IoRow &row : rows) {
        std::printf("%8zu %8zu %10zu %10zu %11.4f %11.4f %7.1fx\n",
                    row.qubits, row.repeats, row.textBytes,
                    row.binaryBytes, row.textSeconds, row.binarySeconds,
                    row.textSeconds / row.binarySeconds);
    }
    std::printf("(binary target: >= 5x faster chip load at 10k "
                "qubits)\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
