/**
 * @file
 * Reproduces paper Figure 17: large-scale wiring estimation.
 *  (a) Coax cables for square systems of 10..1000 qubits, Google vs
 *      YOUTIAO (paper: >2.3x reduction; 150 qubits: 613 -> 267).
 *  (b) Parallel-X fidelity across all 150 qubits (paper: 94.3%).
 *  (c) IBM chiplet scale-out comparison (paper: ~3.4x cable reduction).
 *  (d) 1k..100k qubits: cable count and dollar savings (paper: 3.1x,
 *      >$2.3B saved; our theta=4 mix yields 2.3x / $1.5B -- see
 *      EXPERIMENTS.md).
 *  (e) Hot-path profile (not a paper figure): full designer + routing
 *      on an 80-qubit system, feeding the perf record that
 *      tools/perf_check compares against bench/baselines/.
 *  (f) Hierarchical scale-out (DESIGN.md section 10): tiled designer +
 *      stitched routing on a 1024-qubit system, cross-checked against
 *      the analytic estimate; its hier.* / corridor.* phases join the
 *      perf record.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <numbers>

#include "bench_common.hpp"
#include "core/scalability.hpp"
#include "multiplex/fdm.hpp"
#include "multiplex/frequency_allocation.hpp"
#include "routing/chip_router.hpp"
#include "sim/fidelity_estimator.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace youtiao;

void
printPartA()
{
    std::printf("Figure 17 (a): coax cables, 10 - 1000 qubit square "
                "systems\n");
    bench::rule();
    std::printf("%8s %10s %10s %10s\n", "#qubits", "Google", "YOUTIAO",
                "reduction");
    const std::vector<std::size_t> sizes{10, 30, 100, 150, 300, 600,
                                         1000};
    const std::vector<ScalePoint> points = bench::tableRows(
        sizes, [](std::size_t n) { return estimateSquareSystem(n); });
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const ScalePoint &p = points[i];
        std::printf("%8zu %10zu %10zu %9.2fx\n", sizes[i], p.googleCoax,
                    p.youtiaoCoax, p.coaxReduction());
    }
    std::printf("(paper at 150 qubits: 613 -> 267, 2.3x)\n\n");
}

void
printPartB()
{
    std::printf("Figure 17 (b): simultaneous X gates on all 150 "
                "qubits\n");
    bench::rule();
    const ChipTopology chip = makeGridWithQubitCount(150);
    Prng prng(0xF17);
    const ChipCharacterization data = characterizeChip(chip, prng);
    YoutiaoConfig config;
    const YoutiaoDesign design =
        bench::designFromMeasurements(chip, data, config);
    const NoiseModel noise(config.noise);
    const FrequencyPlan freq = allocateFrequencies(
        design.xyPlan, data.xyCrosstalk, noise, config.frequency);

    FidelityContext ctx;
    ctx.noise = noise;
    ctx.xyCoupling = data.xyCrosstalk;
    ctx.zzMHz = data.zzCrosstalkMHz;
    ctx.frequencyGHz = freq.frequencyGHz;
    ctx.fdmLineOfQubit = design.xyPlan.lineOfQubit;
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        ctx.t1Ns.push_back(chip.qubit(q).t1Ns);

    QuantumCircuit qc(chip.qubitCount());
    for (std::size_t q = 0; q < chip.qubitCount(); ++q)
        qc.rx(q, std::numbers::pi);
    const double f = estimateFidelity(qc, ctx).fidelity;
    std::printf("all-qubit X fidelity: %.1f%%  (paper: 94.3%%)\n\n",
                100.0 * f);
}

void
printPartC()
{
    std::printf("Figure 17 (c): IBM chiplet scale-out comparison\n");
    bench::rule();
    std::printf("%8s %10s %12s %10s %10s\n", "copies", "qubits",
                "IBM cables", "YOUTIAO", "reduction");
    const std::vector<std::size_t> copies_sweep{1, 5, 10, 25};
    const std::vector<ChipletComparison> rows = bench::tableRows(
        copies_sweep,
        [](std::size_t copies) { return compareIbmChiplet(copies); });
    for (const ChipletComparison &cmp : rows) {
        std::printf("%8zu %10zu %12zu %10zu %9.2fx\n", cmp.copies,
                    cmp.totalQubits, cmp.ibmCoax, cmp.youtiaoCoax,
                    cmp.cableReduction());
    }
    std::printf("(paper at 25 copies of 133-qubit chips: ~3.5x)\n\n");
}

void
printPartD()
{
    std::printf("Figure 17 (d): 1k - 100k qubit systems\n");
    bench::rule();
    std::printf("%8s %10s %10s %10s %14s\n", "#qubits", "Google",
                "YOUTIAO", "fraction", "savings");
    const std::vector<std::size_t> sizes{1000, 10000, 50000, 100000};
    const std::vector<ScalePoint> points = bench::tableRows(
        sizes, [](std::size_t n) { return estimateSquareSystem(n); });
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const std::size_t n = sizes[i];
        const ScalePoint &p = points[i];
        std::printf("%8zu %10zu %10zu %9.0f%% %14s\n", n, p.googleCoax,
                    p.youtiaoCoax,
                    100.0 * static_cast<double>(p.youtiaoCoax) /
                        static_cast<double>(p.googleCoax),
                    bench::money(p.googleCostUsd - p.youtiaoCostUsd)
                        .c_str());
    }
    std::printf("(paper at 100k: 4.4e5 cables -> 32%%, >$2.3B saved; "
                "our theta=4 mix: ~44%%, ~$1.5B)\n\n");
}

/**
 * Hot-path profile for the perf record: the full designer (forest fit,
 * crosstalk prediction, frequency allocation) plus chip routing on one
 * 80-qubit square system, so BENCH_fig17_scalability.json carries the
 * design.*, noise.* and routing/astar phases tools/perf_check tracks.
 */
void
printPartE()
{
    std::printf("Hot-path profile: full designer + routing, 80 "
                "qubits\n");
    bench::rule();
    const ChipTopology chip = makeGridWithQubitCount(80);
    Prng prng(0xF17E);
    const ChipCharacterization data = characterizeChip(chip, prng);
    YoutiaoConfig config;
    const YoutiaoDesigner designer(config);
    const YoutiaoDesign design = designer.design(chip, data);
    const FdmPlan readout =
        groupFdmLocalCluster(chip, config.cost.readoutFeedCapacity);
    const auto nets =
        buildWiringNets(chip, design.xyPlan, design.zPlan, readout);
    const ChipRoutingResult route = routeChip(chip, nets);
    std::printf("%zu nets routed, %zu crossovers, %.1f mm^2 routing "
                "area\n\n",
                route.netCount, route.crossovers.size(),
                route.routingAreaMm2);

    // Statevector stint so sim.gate_kernels joins the perf record: an
    // 18-qubit brickwork circuit (single-qubit rotations + CZ/SWAP
    // layers) heavy enough to clear perf_check's timing floor.
    const std::size_t sv_qubits = 18;
    QuantumCircuit qc(sv_qubits);
    for (std::size_t layer = 0; layer < 8; ++layer) {
        for (std::size_t q = 0; q < sv_qubits; ++q) {
            qc.rx(q, 0.1 + 0.01 * static_cast<double>(q + layer));
            qc.rz(q, 0.2 + 0.02 * static_cast<double>(q));
        }
        for (std::size_t q = layer % 2; q + 1 < sv_qubits; q += 2)
            qc.cz(q, q + 1);
        for (std::size_t q = 0; q + 3 < sv_qubits; q += 4)
            qc.swap(q, q + 3);
    }
    const StateVector state = simulate(qc);
    std::printf("statevector stint: %zu qubits, %zu gates, norm "
                "%.12f\n\n",
                sv_qubits, qc.gates().size(), state.norm());
}

/**
 * Hierarchical scale-out: the tiled designer and stitched routing on a
 * 1024-qubit grid (16 tiles of 64), with the merged coax tally audited
 * against the closed-form Figure 17 curve. The hier.design, hier.route
 * and corridor.route phases feed the perf record.
 */
void
printPartF()
{
    std::printf("Figure 17 (f): hierarchical design + routing, 1024 "
                "qubits\n");
    bench::rule();
    const ChipTopology chip = makeGridWithQubitCount(1024);
    const HierarchicalDesigner designer;
    const HierarchicalDesign design = designer.designSynthesized(chip);
    const HierarchicalRouting routing = routeHierarchical(chip, design);
    const HierarchicalCrossCheck check =
        crossCheckHierarchicalCounts(chip, design);
    std::printf("%zu tiles, %zu seam couplers, %zu seam retunes "
                "(%zu above epsilon)\n",
                design.tiles.size(), design.seamCouplers.size(),
                design.seamRetunes, design.seamViolationsUnresolved);
    std::printf("%zu nets routed, %zu failed, DRC %s, max corridor "
                "width %.2f mm\n",
                routing.totalNets, routing.failedConnections,
                routing.clean() ? "clean" : "DIRTY",
                routing.corridor.maxCorridorWidthMm);
    std::printf("coax %zu vs analytic %zu (%.2fx, band [%.1f, %.1f] "
                "%s)\n\n",
                check.actualCoax, check.analyticCoax, check.ratio,
                check.bandLo, check.bandHi,
                check.withinBand ? "ok" : "OUTSIDE");
}

void
BM_EstimateSquareSystem(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(estimateSquareSystem(n));
}
BENCHMARK(BM_EstimateSquareSystem)->Arg(150)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void
BM_GridConstruction(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(makeGridWithQubitCount(n));
}
BENCHMARK(BM_GridConstruction)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    youtiao::bench::PerfReport perf("fig17_scalability", argc, argv);
    printPartA();
    printPartB();
    printPartC();
    printPartD();
    printPartE();
    printPartF();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
