/**
 * @file
 * youtiao_cli -- design the multiplexed wiring of a chip from the shell.
 *
 *   youtiao_cli [--topology NAME] [--rows N] [--cols N] [--seed S]
 *               [--capacity K] [--theta T] [--compare] [--profile]
 *               [--repeat N] [--route] [--hierarchical] [--tile-size N]
 *               [--hop] [--hop-save FILE]
 *               [--drift-trace FILE] [--drift-epochs N]
 *               [--trace FILE] [--inject-faults SPEC]
 *               [--deadline SECONDS] [--checkpoint DIR] [--resume]
 *               [--log-level LEVEL]
 *
 * Topologies: square, hexagon, heavy-square, heavy-hexagon, low-density,
 * grid (with --rows/--cols). Prints the full wiring report; --compare
 * adds the dedicated-wiring baseline bill; --profile appends the
 * per-phase wall-clock table, counters, and latency histograms of the
 * design pipeline. --repeat N (with --profile) re-runs the design
 * pipeline N times after one discarded warmup run and reports the
 * per-phase median, so profile numbers are stable enough to compare
 * across builds. --route also routes the wiring nets on the chip and
 * prints a routing summary. --hierarchical switches to the tiled
 * scale-out pipeline (hierarchical.hpp): per-tile synthetic
 * characterization and design, boundary stitching, and (with --route)
 * tile-level maze routing plus seam-corridor routing; --tile-size sets
 * the qubits per tile and the process exits 1 if the stitched routing
 * is not DRC-clean. --trace FILE records a span timeline of the
 * run as Chrome trace-event JSON (schema "youtiao-trace-1", open in
 * Perfetto or chrome://tracing) and implies --route so the timeline
 * covers per-net routing work. --inject-faults SPEC (also the
 * YOUTIAO_FAULTS environment variable) arms deterministic fault
 * injection at the pipeline's named sites -- grammar
 * site[:rate[:seed]][,...], see docs/FAULT_INJECTION.md; the design
 * then runs through the graceful-degradation pipeline and any
 * concessions are appended to the report. --hop appends the design's
 * seeded FHSS hop schedule (one channel table + rotation sequence per
 * FDM line); --hop-save FILE writes it as JSON (schema youtiao-hop-1).
 * --drift-trace FILE simulates a seeded drift trace (--drift-epochs
 * epochs, default 48) over the designed chip, replays it under the
 * static / hopping / re-allocating policies, prints the comparison
 * table and writes trace + per-policy series as JSON (schema
 * youtiao-drift-adaptation-1). --log-level raises the
 * structured-log threshold (error|warn|info|debug; also YOUTIAO_LOG).
 *
 * Observability: the crash flight recorder is armed on startup
 * (FLIGHT_youtiao_cli.json on a fatal signal, uncaught exception, or
 * DesignError; see common/flight.hpp), YOUTIAO_WATCHDOG starts the
 * resource sampler with optional per-phase stall budgets, and when
 * $YOUTIAO_RUN_LEDGER is set every invocation appends a run manifest
 * (schema "youtiao-run-1") with input hashes, phase timings and peak
 * RSS, ready for trend analysis with tools/perf_trend. All three are
 * observation-only: the designed wiring is byte-identical with or
 * without them.
 *
 * Robustness: --deadline SECONDS arms a cooperative deadline
 * (common/cancel.hpp); a run that exceeds it aborts cleanly with a
 * structured deadline_exceeded error, a flight dump, and exit code 3.
 * --checkpoint DIR journals the pipeline's natural barriers (per tile
 * for --hierarchical design and routing, per epoch for --drift-trace)
 * into DIR; --resume (requires --checkpoint) replays a prior
 * interrupted run's journal -- the manifest must hash to the same chip,
 * seed and configuration -- and the finished artifacts are
 * byte-identical to an uninterrupted run (see docs/CHECKPOINTS.md).
 * All artifact files are written atomically (temp + fsync + rename).
 *
 * Exit codes: 0 success, 1 runtime failure (including structured design
 * failures), 2 usage / bad argument (including chip files that fail to
 * parse), 3 cancelled / deadline exceeded.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chip/chip_bin.hpp"
#include "chip/chip_io.hpp"
#include "chip/topology_builder.hpp"
#include "common/atomic_io.hpp"
#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/cli_parse.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/flight.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/runledger.hpp"
#include "core/hierarchical.hpp"
#include "common/trace.hpp"
#include "common/watchdog.hpp"
#include "core/baselines.hpp"
#include "core/drift_adaptation.hpp"
#include "core/report.hpp"
#include "core/serialization.hpp"
#include "core/youtiao.hpp"
#include "routing/chip_router.hpp"

namespace {

using namespace youtiao;

/** Thrown instead of std::exit so the run-ledger recorder in main()
 *  still observes the failure and finishes its manifest. */
struct ExitFailure {
    int code;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--topology square|hexagon|heavy-square|heavy-hexagon|"
        "low-density|grid]\n"
        "          [--rows N] [--cols N] [--seed S] [--capacity K] "
        "[--theta T] [--compare]\n"
        "          [--save FILE] [--chip FILE] [--save-chip-bin FILE] "
        "[--profile]\n"
        "          [--repeat N] [--route]\n"
        "          [--hierarchical] [--tile-size N]\n"
        "          [--hop] [--hop-save FILE] [--drift-trace FILE] "
        "[--drift-epochs N]\n"
        "          [--trace FILE] [--inject-faults SPEC]\n"
        "          [--deadline SECONDS] [--checkpoint DIR] [--resume]\n"
        "          [--log-level error|warn|info|debug]\n"
        "  --rows/--cols/--capacity take integers >= 1, --theta a "
        "positive number;\n"
        "  --chip loads a chip file, text or binary (recognized by "
        "magic);\n"
        "  --save-chip-bin writes the chip as a binary YTCHPBIN file "
        "and exits;\n"
        "  --profile appends the per-phase wall-clock table, counters "
        "and histograms;\n"
        "  --repeat N (requires --profile) re-runs the design N times "
        "after a\n"
        "  discarded warmup and reports the per-phase median;\n"
        "  --route also routes the wiring nets and prints a summary;\n"
        "  --hierarchical designs the chip tile by tile (--tile-size "
        "qubits per\n"
        "  tile, default 64) with boundary stitching and corridor "
        "routing; exits 1\n"
        "  if the stitched routing fails DRC;\n"
        "  --hop appends the seeded FHSS hop schedule; --hop-save FILE "
        "writes it as\n"
        "  JSON; --drift-trace FILE replays a seeded drift trace "
        "(--drift-epochs\n"
        "  epochs, default 48) under the static/hopping/re-allocating "
        "policies and\n"
        "  writes trace + results as JSON;\n"
        "  --trace FILE writes a Chrome trace-event timeline of the run "
        "(implies\n"
        "  --route); --inject-faults arms deterministic fault injection "
        "(grammar\n"
        "  site[:rate[:seed]][,...]; also YOUTIAO_FAULTS);\n"
        "  --deadline SECONDS cancels the run cooperatively when the "
        "budget runs\n"
        "  out (exit 3); --checkpoint DIR journals per-tile/per-epoch "
        "snapshots;\n"
        "  --resume replays a matching journal so the finished artifact "
        "is\n"
        "  byte-identical to an uninterrupted run; --log-level "
        "sets the\n"
        "  structured-log threshold (also the YOUTIAO_LOG environment "
        "variable)\n",
        argv0);
    std::exit(2);
}

/** Element-wise median of per-run phase snapshots (seconds and calls). */
std::map<std::string, metrics::PhaseStats>
medianPhases(std::vector<std::map<std::string, metrics::PhaseStats>> &runs)
{
    std::map<std::string, std::vector<double>> seconds;
    std::map<std::string, std::vector<std::uint64_t>> calls;
    for (const auto &run : runs) {
        for (const auto &[name, stats] : run) {
            seconds[name].push_back(stats.seconds);
            calls[name].push_back(stats.calls);
        }
    }
    std::map<std::string, metrics::PhaseStats> out;
    for (auto &[name, values] : seconds) {
        std::sort(values.begin(), values.end());
        auto &counts = calls[name];
        std::sort(counts.begin(), counts.end());
        metrics::PhaseStats stats;
        const std::size_t mid = values.size() / 2;
        stats.seconds = values.size() % 2 == 1
                            ? values[mid]
                            : 0.5 * (values[mid - 1] + values[mid]);
        stats.calls = counts[counts.size() / 2];
        out[name] = stats;
    }
    return out;
}

} // namespace

int
runCli(int argc, char **argv, runledger::Recorder &recorder)
{
    std::string topology = "grid";
    std::size_t rows = 6, cols = 6;
    std::uint64_t seed = 2025;
    std::size_t capacity = 5;
    double theta = 4.0;
    bool compare = false;
    bool profile = false;
    bool route = false;
    bool hierarchical = false;
    std::size_t tile_size = 64;
    std::size_t repeat = 1;
    std::string save_path;
    std::string chip_path;
    std::string save_chip_bin_path;
    std::string trace_path;
    std::string fault_spec;
    bool hop = false;
    std::string hop_save_path;
    std::string drift_path;
    std::size_t drift_epochs = 48;
    double deadline_s = 0.0;
    std::string checkpoint_dir;
    bool resume = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            if (arg == "--topology")
                topology = next();
            else if (arg == "--rows")
                rows = parseSizeArg(next(), "--rows");
            else if (arg == "--cols")
                cols = parseSizeArg(next(), "--cols");
            else if (arg == "--seed")
                seed = parseUint64Arg(next(), "--seed");
            else if (arg == "--capacity")
                capacity = parseSizeArg(next(), "--capacity");
            else if (arg == "--theta")
                theta = parsePositiveDoubleArg(next(), "--theta");
            else if (arg == "--compare")
                compare = true;
            else if (arg == "--profile")
                profile = true;
            else if (arg == "--repeat")
                repeat = parseSizeArg(next(), "--repeat", 1, 10000);
            else if (arg == "--route")
                route = true;
            else if (arg == "--hierarchical")
                hierarchical = true;
            else if (arg == "--tile-size")
                tile_size = parseSizeArg(next(), "--tile-size");
            else if (arg == "--save")
                save_path = next();
            else if (arg == "--chip")
                chip_path = next();
            else if (arg == "--save-chip-bin")
                save_chip_bin_path = next();
            else if (arg == "--hop")
                hop = true;
            else if (arg == "--hop-save")
                hop_save_path = next();
            else if (arg == "--drift-trace")
                drift_path = next();
            else if (arg == "--drift-epochs")
                drift_epochs = parseSizeArg(next(), "--drift-epochs");
            else if (arg == "--trace")
                trace_path = next();
            else if (arg == "--deadline")
                deadline_s =
                    parsePositiveDoubleArg(next(), "--deadline");
            else if (arg == "--checkpoint")
                checkpoint_dir = next();
            else if (arg == "--resume")
                resume = true;
            else if (arg == "--inject-faults")
                fault_spec = next();
            else if (arg == "--log-level") {
                const char *name = next();
                if (!log::setLevelByName(name)) {
                    std::fprintf(stderr,
                                 "error: unknown log level '%s'\n", name);
                    return 2;
                }
            } else
                usage(argv[0]);
        }
        // A malformed fault spec is a bad argument, caught here; the
        // environment spec goes through the same validation.
        if (!fault_spec.empty()) {
            fault::configure(fault_spec);
            fault::enable();
        } else {
            fault::configureFromEnv();
        }
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (repeat > 1 && !profile) {
        std::fprintf(stderr, "error: --repeat requires --profile\n");
        return 2;
    }
    if (resume && checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "error: --resume requires --checkpoint DIR\n");
        return 2;
    }
    // The hierarchical path has its own report, routing and exit
    // semantics; flags tied to the flat single-design flow are rejected
    // up front rather than silently ignored.
    if (hierarchical &&
        (!save_path.empty() || compare || repeat > 1 ||
         !fault_spec.empty() || hop || !hop_save_path.empty() ||
         !drift_path.empty())) {
        std::fprintf(stderr,
                     "error: --hierarchical is incompatible with "
                     "--save, --compare, --repeat, --inject-faults, "
                     "--hop, --hop-save and --drift-trace\n");
        return 2;
    }
    // A trace without the routing stage would miss the per-net spans
    // that make the timeline worth reading.
    if (!trace_path.empty())
        route = true;

    TopologyFamily family;
    if (topology == "square")
        family = TopologyFamily::Square;
    else if (topology == "hexagon")
        family = TopologyFamily::Hexagon;
    else if (topology == "heavy-square")
        family = TopologyFamily::HeavySquare;
    else if (topology == "heavy-hexagon")
        family = TopologyFamily::HeavyHexagon;
    else if (topology == "low-density")
        family = TopologyFamily::LowDensity;
    else if (topology == "grid")
        family = TopologyFamily::SquareGrid;
    else
        usage(argv[0]);

    watchdog::startFromEnv();

    try {
        ChipTopology chip;
        if (chip_path.empty()) {
            chip = makeTopology(family, rows, cols);
        } else {
            try {
                // Text or binary, told apart by the leading magic.
                chip = loadChipAuto(chip_path);
            } catch (const ConfigError &e) {
                // A chip file that cannot be read or does not parse is
                // a bad argument, reported with a usage exit code.
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
        }
        if (!save_chip_bin_path.empty()) {
            // Conversion mode: write the chip (built or loaded) as a
            // binary file and stop -- no design work.
            saveChipBinary(save_chip_bin_path, chip);
            std::printf("chip saved to %s (%zu qubits, %zu couplers, "
                        "binary)\n",
                        save_chip_bin_path.c_str(), chip.qubitCount(),
                        chip.couplerCount());
            return 0;
        }
        if (!trace_path.empty())
            trace::Tracer::global().enable();

        YoutiaoConfig config;
        config.seed = seed;
        config.fdm.lineCapacity = capacity;
        config.tdm.parallelismThreshold = theta;
        config.fit.forest.treeCount = 25;

        // Input provenance for the run ledger: identical inputs hash
        // identically, so drift in a manifest's hashes flags a changed
        // chip or configuration before anyone compares timings.
        if (runledger::ledgerConfigured()) {
            recorder.hashBytes("chip", chipToString(chip));
            recorder.setHash("seed", std::to_string(seed));
            recorder.hashBytes(
                "config",
                "topology=" + topology +
                    ",capacity=" + std::to_string(capacity) +
                    ",theta=" + std::to_string(theta) +
                    ",hierarchical=" + (hierarchical ? "1" : "0") +
                    ",tile_size=" + std::to_string(tile_size) +
                    ",faults=" + fault_spec);
        }

        if (deadline_s > 0.0)
            cancel::armDeadline(deadline_s);
        if (!checkpoint_dir.empty()) {
            // The manifest hashes mirror the run-ledger provenance
            // values: a resume under a different chip, seed or
            // configuration is refused up front instead of splicing
            // incompatible snapshots.
            try {
                checkpoint::open(
                    checkpoint_dir, "youtiao_cli",
                    {{"chip", runledger::fnv1aHex(chipToString(chip))},
                     {"seed", std::to_string(seed)},
                     {"config",
                      runledger::fnv1aHex(
                          "topology=" + topology +
                          ",capacity=" + std::to_string(capacity) +
                          ",theta=" + std::to_string(theta) +
                          ",hierarchical=" +
                          (hierarchical ? "1" : "0") +
                          ",tile_size=" + std::to_string(tile_size) +
                          ",faults=" + fault_spec)}},
                    resume);
            } catch (const ConfigError &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
            const checkpoint::Stats st = checkpoint::stats();
            if (resume)
                std::printf("checkpoint: resumed %zu snapshot(s) from "
                            "%s (%zu rejected)\n",
                            st.snapshotsLoaded, checkpoint_dir.c_str(),
                            st.snapshotsRejected);
        }
        // From here every return path must release the journal.
        struct CheckpointCloser {
            ~CheckpointCloser() { checkpoint::close(); }
        } checkpoint_closer;

        if (hierarchical) {
            // Tiled scale-out: per-tile synthetic characterization
            // (O(tile^2), not O(chip^2) -- the global matrices would
            // not fit memory at 10k+ qubits), per-tile design on the
            // pool, boundary stitch, corridor routing.
            HierarchicalConfig hier;
            hier.tileSizeQubits = tile_size;
            const HierarchicalDesigner hdesigner(config, hier);
            DegradationReport hier_partial;
            Expected<HierarchicalDesign, DesignError> hresult =
                hdesigner.designSynthesizedRobust(chip, 0.6,
                                                  &hier_partial);
            if (!hresult.hasValue()) {
                const DesignError &err = hresult.error();
                const std::string what = err.toString();
                log::error("hierarchical design failed",
                           {{"error", what}});
                std::fprintf(stderr, "design error: %s\n",
                             what.c_str());
                for (const std::string &note : hier_partial.notes)
                    std::fprintf(stderr, "  partial: %s\n",
                                 note.c_str());
                if (err.isCancellation()) {
                    flight::dump("cancelled");
                    return 3;
                }
                return 1;
            }
            const HierarchicalDesign &hdesign = hresult.value();
            std::fputs(hierarchicalReport(chip, hdesign, config).c_str(),
                       stdout);
            bool clean = true;
            if (route) {
                const HierarchicalRouting routing =
                    routeHierarchical(chip, hdesign);
                std::size_t tile_violations = 0;
                for (const DrcReport &drc : routing.tileDrc)
                    tile_violations += drc.violations.size();
                std::printf(
                    "\n-- hierarchical routing --\n"
                    "nets routed            %zu\n"
                    "failed connections     %zu\n"
                    "total wire length      %.1f mm\n"
                    "corridor nets failed   %zu\n"
                    "max corridor width     %.2f mm\n"
                    "tile DRC violations    %zu\n"
                    "corridor DRC           %s\n"
                    "DRC %s\n",
                    routing.totalNets, routing.failedConnections,
                    routing.totalLengthMm, routing.corridor.failedNets,
                    routing.corridor.maxCorridorWidthMm,
                    tile_violations,
                    routing.corridorDrc.clean ? "clean" : "dirty",
                    routing.clean() ? "clean" : "DIRTY");
                clean = routing.clean();
            }
            if (profile)
                std::fputs(metrics::phaseTable().c_str(), stdout);
            if (!trace_path.empty()) {
                trace::Tracer::global().disable();
                if (!trace::Tracer::global().writeJson(trace_path)) {
                    std::fprintf(stderr, "error: cannot write %s\n",
                                 trace_path.c_str());
                    return 1;
                }
                std::printf("\ntrace written to %s\n",
                            trace_path.c_str());
            }
            return clean ? 0 : 1;
        }

        Prng prng(seed);
        const ChipCharacterization data = characterizeChip(chip, prng);
        const YoutiaoDesigner designer(config);
        // The robust entry point walks the degradation ladder when fault
        // injection (or a genuinely infeasible input) bites; on a clean
        // run its output is bit-identical to designer.design().
        auto run_design = [&designer, &chip, &data]() -> YoutiaoDesign {
            Expected<YoutiaoDesign, DesignError> result =
                designer.designRobust(chip, data);
            if (!result.hasValue()) {
                const std::string what = result.error().toString();
                log::error("design failed", {{"error", what}});
                std::fprintf(stderr, "design error: %s\n", what.c_str());
                if (result.error().isCancellation()) {
                    flight::dump("cancelled");
                    throw ExitFailure{3};
                }
                throw ExitFailure{1};
            }
            return std::move(result.value());
        };
        std::map<std::string, metrics::PhaseStats> profile_phases;
        std::map<std::string, std::uint64_t> profile_counters;
        std::optional<YoutiaoDesign> maybe_design;
        if (repeat > 1) {
            // Warmup run (discarded), then N measured runs: per-run
            // registry snapshots, median per phase. The design is
            // deterministic, so every run yields the same output and
            // keeping the last is keeping any.
            metrics::Registry::global().reset();
            (void)run_design();
            std::vector<std::map<std::string, metrics::PhaseStats>> runs;
            runs.reserve(repeat);
            for (std::size_t r = 0; r < repeat; ++r) {
                metrics::Registry::global().reset();
                maybe_design = run_design();
                runs.push_back(metrics::Registry::global().phases());
                if (r == 0)
                    profile_counters =
                        metrics::Registry::global().counters();
            }
            profile_phases = medianPhases(runs);
        } else {
            maybe_design = run_design();
        }
        const YoutiaoDesign &design = *maybe_design;
        if (runledger::ledgerConfigured()) {
            for (const std::string &note : design.degradation.notes)
                recorder.addNote("degradation: " + note);
        }

        std::fputs(wiringReport(chip, design, config).c_str(), stdout);
        if (!save_path.empty()) {
            std::ostringstream out;
            saveDesign(out, design);
            io::atomicWriteFile(save_path, out.str());
            std::printf("\ndesign saved to %s\n", save_path.c_str());
        }
        if (compare) {
            const BaselineDesign google = designGoogleWiring(chip, config);
            std::printf("\n%s\n",
                        costComparison(design, google, "dedicated")
                            .c_str());
        }
        if (route) {
            const auto nets = buildWiringNets(
                chip, design.xyPlan, design.zPlan, design.readoutPlan);
            const RoutedWiring routed = routeChipWithFallback(chip, nets);
            std::printf("\n-- chip routing --\n"
                        "nets routed            %zu\n"
                        "failed connections     %zu\n"
                        "total wire length      %.1f mm\n"
                        "routing area           %.2f mm^2\n"
                        "airbridge crossovers   %zu\n",
                        routed.result.netCount,
                        routed.result.failedConnections,
                        routed.result.totalLengthMm,
                        routed.result.routingAreaMm2,
                        routed.result.crossovers.size());
            // Extra lines only when the ladder engaged, so clean runs
            // keep the historical routing summary byte for byte.
            if (routed.dedicatedNetFallbacks > 0)
                std::printf("dedicated fallbacks    %zu lines (from %zu "
                            "nets)\n",
                            routed.dedicatedNetFallbacks,
                            routed.fallbackNets.size());
        }
        if (hop || !hop_save_path.empty()) {
            const HopPlan hop_plan =
                buildHopPlan(design.xyPlan, design.frequencyPlan,
                             FhssConfig{seed, 4});
            if (hop)
                std::printf("\n%s", hopPlanReport(hop_plan).c_str());
            if (!hop_save_path.empty()) {
                io::atomicWriteFile(hop_save_path,
                                    hopPlanToJson(hop_plan));
                std::printf("\nhop schedule saved to %s\n",
                            hop_save_path.c_str());
            }
        }
        if (!drift_path.empty()) {
            // Seeded days-long drift replay: same trace and the same
            // per-epoch evaluation circuits under all three policies,
            // so the printed table is a like-for-like comparison.
            DriftConfig drift_config;
            drift_config.epochs = drift_epochs;
            drift_config.seed = taskSeed(seed, 0xD21F7);
            const DriftTrace trace_data =
                simulateDrift(chip.qubitCount(), drift_config);
            std::vector<DriftAdaptationResult> results;
            for (DriftPolicy policy :
                 {DriftPolicy::Static, DriftPolicy::Hopping,
                  DriftPolicy::Reallocate}) {
                DriftAdaptationConfig adapt;
                adapt.policy = policy;
                adapt.hop.seed = seed;
                const DriftAdapter adapter(config, adapt);
                results.push_back(
                    adapter.run(chip, design, data, trace_data));
            }
            std::printf("\n%s",
                        driftAdaptationReport(results).c_str());
            io::atomicWriteFile(drift_path,
                                driftResultsToJson(trace_data, results));
            std::printf("\ndrift replay saved to %s\n",
                        drift_path.c_str());
        }
        if (profile) {
            if (repeat > 1) {
                std::printf("\n(median of %zu measured runs, 1 warmup "
                            "discarded)\n",
                            repeat);
                std::fputs(metrics::phaseTable(profile_phases,
                                               profile_counters)
                               .c_str(),
                           stdout);
            } else {
                std::fputs(metrics::phaseTable().c_str(), stdout);
            }
        }
        if (!trace_path.empty()) {
            trace::Tracer::global().disable();
            if (!trace::Tracer::global().writeJson(trace_path)) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             trace_path.c_str());
                return 1;
            }
            std::printf("\ntrace written to %s\n", trace_path.c_str());
        }
    } catch (const ExitFailure &e) {
        return e.code;
    } catch (const cancel::Cancelled &e) {
        // A Cancelled that escaped a non-robust path (routing, drift
        // replay, hop schedule): same structured exit as the design
        // ladder's DeadlineExceeded.
        flight::dump("cancelled");
        log::error("run cancelled", {{"where", e.where()}});
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    } catch (const std::exception &e) {
        log::error("run failed", {{"what", e.what()}});
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    flight::install("youtiao_cli");
    runledger::Recorder recorder("youtiao_cli", argc, argv);
    const int status = runCli(argc, argv, recorder);
    watchdog::stop();
    recorder.setExitStatus(status);
    recorder.finish();
    return status;
}
