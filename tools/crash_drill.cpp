/**
 * @file
 * crash_drill -- prove the checkpoint/resume path end to end by
 * actually crashing.
 *
 *   crash_drill --mode hier|campaign|drift [--dir DIR] [--seed S]
 *               [--kill-frac F] [--corrupt] [--log-level LEVEL]
 *
 * For the chosen workload the drill forks three children of itself:
 *
 *   A  reference -- runs the workload clean (no checkpoint) and writes
 *      its artifact; the parent measures the wall time T.
 *   B  victim -- runs the same workload with a checkpoint journal and
 *      is SIGKILLed at a seeded fraction of T (no chance to clean up:
 *      this is the crash).
 *   C  survivor -- resumes from B's journal and writes its artifact.
 *
 * The drill passes when C exits 0 and its artifact is byte-identical
 * to A's -- the journal replay spliced B's finished units into exactly
 * the state an uninterrupted run reaches. With --corrupt the victim is
 * allowed to finish, the newest snapshot file is then byte-flipped, and
 * the survivor must report at least one checksum-rejected snapshot yet
 * still land on the identical artifact (the corrupted unit is simply
 * recomputed).
 *
 * Workloads: `hier` designs and routes a 1024-qubit chip tile by tile
 * (per-tile design + routing barriers), `campaign` sweeps a fault
 * campaign (per-cell barriers, fault-counter fast-forward), `drift`
 * replays the three drift policies (per-epoch barriers).
 *
 * Exit codes: 0 drill passed, 1 drill failed, 2 usage.
 */

#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "chip/topology_builder.hpp"
#include "common/atomic_io.hpp"
#include "common/checkpoint.hpp"
#include "common/cli_parse.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "core/drift_adaptation.hpp"
#include "core/fault_campaign.hpp"
#include "core/hierarchical.hpp"
#include "core/report.hpp"
#include "core/serialization.hpp"
#include "core/youtiao.hpp"

namespace {

using namespace youtiao;
namespace fs = std::filesystem;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --mode hier|campaign|drift [--dir DIR] [--seed S]\n"
        "          [--kill-frac F] [--corrupt]\n"
        "          [--log-level error|warn|info|debug]\n"
        "  --mode: which checkpointed workload to crash and resume\n"
        "  --dir: scratch directory (default crash_drill_<mode>)\n"
        "  --seed: drill seed; picks the kill point (default 1)\n"
        "  --kill-frac: override the kill point as a fraction of the\n"
        "    clean run's wall time (0 < F < 1)\n"
        "  --corrupt: let the victim finish, byte-flip the newest\n"
        "    snapshot, and require the survivor to reject it\n",
        argv0);
    std::exit(2);
}

/**
 * The workload under test. Runs the mode's pipeline -- against a
 * checkpoint journal when @p ckpt_dir is non-empty -- and atomically
 * writes the finished artifact to @p artifact_path. With @p stats_path
 * non-empty the end-of-run checkpoint::Stats are dumped there so the
 * parent can assert on snapshot rejection from outside the process.
 * Returns the process exit code.
 */
int
runWorkload(const std::string &mode, const std::string &artifact_path,
            const std::string &ckpt_dir, bool resume,
            const std::string &stats_path)
{
    if (!ckpt_dir.empty())
        checkpoint::open(ckpt_dir, "crash_drill_" + mode,
                         {{"seed", "7"}}, resume);

    std::string artifact;
    if (mode == "hier") {
        // 32x32 = 1024 qubits: enough tiles that a mid-run SIGKILL
        // lands between per-tile barriers, small enough to drill in CI.
        const ChipTopology chip = makeSquareGrid(32, 32);
        YoutiaoConfig config;
        config.seed = 7;
        HierarchicalConfig hier;
        hier.tileSizeQubits = 64;
        const HierarchicalDesigner designer(config, hier);
        Expected<HierarchicalDesign, DesignError> result =
            designer.designSynthesizedRobust(chip);
        if (!result.hasValue()) {
            std::fprintf(stderr, "drill workload failed: %s\n",
                         result.error().toString().c_str());
            return 1;
        }
        const HierarchicalDesign &design = result.value();
        const HierarchicalRouting routing =
            routeHierarchical(chip, design);
        std::ostringstream out;
        out << hierarchicalReport(chip, design, config);
        out << "nets=" << routing.totalNets
            << " failed=" << routing.failedConnections
            << " clean=" << routing.clean() << "\n";
        saveDesign(out, design.merged);
        artifact = out.str();
    } else if (mode == "campaign") {
        const ChipTopology chip = makeSquareGrid(5, 5);
        FaultCampaignConfig campaign;
        campaign.seedsPerRate = 4;
        campaign.baseSeed = 7;
        campaign.designer.seed = 7;
        // Fault injection exercises the counter fast-forward: a resumed
        // sweep must fire the same faults in the same cells.
        campaign.faultSpec = "freq.allocate:0.05:7";
        artifact = runFaultCampaign(chip, campaign).toJson();
    } else if (mode == "drift") {
        const ChipTopology chip = makeSquareGrid(6, 6);
        Prng prng(7);
        const ChipCharacterization data = characterizeChip(chip, prng);
        YoutiaoConfig config;
        config.seed = 7;
        const YoutiaoDesign design =
            YoutiaoDesigner(config).designFromMeasurements(chip, data);
        DriftConfig drift;
        drift.epochs = 48;
        drift.seed = 0xD21F7;
        const DriftTrace trace = simulateDrift(chip.qubitCount(), drift);
        std::vector<DriftAdaptationResult> results;
        for (DriftPolicy policy :
             {DriftPolicy::Static, DriftPolicy::Hopping,
              DriftPolicy::Reallocate}) {
            DriftAdaptationConfig adapt;
            adapt.policy = policy;
            adapt.hop.seed = 7;
            const DriftAdapter adapter(config, adapt);
            results.push_back(adapter.run(chip, design, data, trace));
        }
        artifact = driftResultsToJson(trace, results);
    } else {
        std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
        return 2;
    }

    io::atomicWriteFile(artifact_path, artifact);
    if (!stats_path.empty()) {
        const checkpoint::Stats st = checkpoint::stats();
        std::ostringstream out;
        out << "loaded=" << st.snapshotsLoaded
            << " rejected=" << st.snapshotsRejected
            << " stores=" << st.stores << " hits=" << st.fetchHits
            << "\n";
        io::atomicWriteFile(stats_path, out.str());
    }
    checkpoint::close();
    return 0;
}

/** Fork and run @p mode's workload in the child; returns the pid. */
pid_t
spawnWorkload(const std::string &mode, const std::string &artifact_path,
              const std::string &ckpt_dir, bool resume,
              const std::string &stats_path)
{
    // Flush before forking so buffered output is not emitted twice.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        std::exit(1);
    }
    if (pid == 0) {
        int code = 1;
        try {
            code = runWorkload(mode, artifact_path, ckpt_dir, resume,
                               stats_path);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "drill child failed: %s\n", e.what());
        }
        std::fflush(stdout);
        std::fflush(stderr);
        // _exit: the child shares the parent's atexit/static state and
        // must not run its destructors.
        _exit(code);
    }
    return pid;
}

/** Wait for @p pid; returns its exit code, or -signal when killed. */
int
waitChild(pid_t pid)
{
    int status = 0;
    if (waitpid(pid, &status, 0) < 0) {
        std::perror("waitpid");
        std::exit(1);
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return -WTERMSIG(status);
    return 1;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Newest (highest-sequence) snapshot file in the journal, or empty. */
std::string
newestSnapshot(const std::string &dir)
{
    std::string best;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("ckpt-", 0) != 0)
            continue;
        // Sequence-prefixed names sort lexicographically.
        if (best.empty() ||
            name > fs::path(best).filename().string())
            best = entry.path().string();
    }
    return best;
}

/** Flip one payload byte of @p path in place. */
bool
corruptSnapshot(const std::string &path)
{
    std::string bytes = slurp(path);
    if (bytes.size() < 40)
        return false;
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x5A);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode;
    std::string dir;
    std::uint64_t seed = 1;
    double kill_frac = 0.0;
    bool corrupt = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            if (arg == "--mode")
                mode = next();
            else if (arg == "--dir")
                dir = next();
            else if (arg == "--seed")
                seed = parseUint64Arg(next(), "--seed");
            else if (arg == "--kill-frac") {
                kill_frac = parsePositiveDoubleArg(next(), "--kill-frac");
                requireConfig(kill_frac < 1.0,
                              "--kill-frac must be below 1");
            } else if (arg == "--corrupt")
                corrupt = true;
            else if (arg == "--log-level") {
                const char *name = next();
                if (!log::setLevelByName(name))
                    usage(argv[0]);
            } else
                usage(argv[0]);
        }
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (mode != "hier" && mode != "campaign" && mode != "drift")
        usage(argv[0]);
    if (dir.empty())
        dir = "crash_drill_" + mode;

    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);
    const std::string ckpt_dir = dir + "/ckpt";
    const std::string artifact_a = dir + "/reference.out";
    const std::string artifact_b = dir + "/victim.out";
    const std::string artifact_c = dir + "/survivor.out";
    const std::string stats_c = dir + "/survivor.stats";

    // A: clean reference run, timed to place the kill point.
    const auto t0 = std::chrono::steady_clock::now();
    const pid_t ref = spawnWorkload(mode, artifact_a, "", false, "");
    if (waitChild(ref) != 0) {
        std::fprintf(stderr, "FAIL: reference run failed\n");
        return 1;
    }
    const double ref_us = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    // B: checkpointed victim. Without --corrupt it is SIGKILLed at a
    // seeded fraction of the reference time -- splitmix-style hash so
    // different seeds probe different barriers; with --corrupt it runs
    // to completion so the journal is full before we damage it.
    const pid_t victim =
        spawnWorkload(mode, artifact_b, ckpt_dir, false, "");
    if (corrupt) {
        waitChild(victim);
    } else {
        double frac = kill_frac;
        if (frac <= 0.0) {
            std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            frac = 0.2 + 0.6 * static_cast<double>(z >> 11) /
                             9007199254740992.0;
        }
        ::usleep(static_cast<useconds_t>(frac * ref_us));
        ::kill(victim, SIGKILL);
        const int victim_status = waitChild(victim);
        if (victim_status == 0)
            std::printf("note: victim finished before the kill point "
                        "(resume will be a full replay)\n");
    }

    std::size_t snapshots = 0;
    if (fs::exists(ckpt_dir))
        for (const fs::directory_entry &entry :
             fs::directory_iterator(ckpt_dir))
            if (entry.path().filename().string().rfind("ckpt-", 0) == 0)
                ++snapshots;

    if (corrupt) {
        const std::string target = newestSnapshot(ckpt_dir);
        if (target.empty() || !corruptSnapshot(target)) {
            std::fprintf(stderr,
                         "FAIL: no snapshot available to corrupt\n");
            return 1;
        }
        std::printf("corrupted %s\n", target.c_str());
    }

    // C: survivor resumes the journal.
    const pid_t survivor =
        spawnWorkload(mode, artifact_c, ckpt_dir, true, stats_c);
    if (waitChild(survivor) != 0) {
        std::fprintf(stderr, "FAIL: resumed run failed\n");
        return 1;
    }

    const std::string reference = slurp(artifact_a);
    const std::string resumed = slurp(artifact_c);
    const std::string stats = slurp(stats_c);
    std::printf("mode=%s snapshots=%zu reference=%zu bytes "
                "resumed=%zu bytes\n%s",
                mode.c_str(), snapshots, reference.size(),
                resumed.size(), stats.c_str());
    if (reference.empty() || reference != resumed) {
        std::fprintf(stderr,
                     "FAIL: resumed artifact differs from the clean "
                     "run's\n");
        return 1;
    }
    if (corrupt && stats.find("rejected=0") != std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: corrupted snapshot was not rejected\n");
        return 1;
    }
    std::printf("PASS: resume is byte-identical to the clean run\n");
    return 0;
}
