/**
 * @file
 * perf_trend -- longitudinal trend report over a run ledger.
 *
 *   perf_trend [--ledger FILE] [--tool NAME]
 *              [--max-regression R] [--min-seconds S]
 *
 * Where perf_check compares exactly two perf records, perf_trend reads
 * the JSONL run ledger (schema youtiao-run-1, written by every tool and
 * bench when $YOUTIAO_RUN_LEDGER is set; see docs/FILE_FORMATS.md) and
 * aggregates each tool's runs into per-phase trends: the median of the
 * prior runs, the p99 across the whole series, the latest value, and
 * the latest/median ratio. A phase whose latest run exceeds the prior
 * median by more than R (default 0.25 = +25%), with at least two prior
 * observations and a median above the S-second floor (default 0.01),
 * is flagged as REGRESSED -- the longitudinal drift signal a pairwise
 * baseline check cannot see.
 *
 * --ledger defaults to $YOUTIAO_RUN_LEDGER; --tool restricts the report
 * to one tool's runs.
 *
 * Exit codes: 0 no regression, 1 at least one phase regressed,
 * 2 usage / unreadable or malformed ledger.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli_parse.hpp"
#include "common/error.hpp"
#include "common/runledger.hpp"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--ledger FILE] [--tool NAME]\n"
                 "          [--max-regression R] [--min-seconds S]\n"
                 "  FILE: JSONL run ledger (default: "
                 "$YOUTIAO_RUN_LEDGER)\n"
                 "  NAME: restrict the report to one tool's runs\n"
                 "  R: latest/median ratio above 1+R flags a phase "
                 "(default 0.25)\n"
                 "  S: ignore phases whose prior median is below S "
                 "seconds (default 0.01)\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace youtiao;

    std::string ledger_path;
    std::string tool_filter;
    runledger::TrendOptions options;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            if (arg == "--ledger")
                ledger_path = next();
            else if (arg == "--tool")
                tool_filter = next();
            else if (arg == "--max-regression")
                options.maxRegression =
                    parsePositiveDoubleArg(next(), "--max-regression");
            else if (arg == "--min-seconds")
                options.minSeconds =
                    parsePositiveDoubleArg(next(), "--min-seconds");
            else
                usage(argv[0]);
        }
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (ledger_path.empty()) {
        const char *env = std::getenv("YOUTIAO_RUN_LEDGER");
        if (env != nullptr && *env != '\0')
            ledger_path = env;
    }
    if (ledger_path.empty()) {
        std::fprintf(stderr, "error: no ledger (--ledger FILE or "
                             "$YOUTIAO_RUN_LEDGER)\n");
        return 2;
    }

    try {
        std::ifstream in(ledger_path);
        requireConfig(static_cast<bool>(in),
                      "cannot read run ledger '" + ledger_path + "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::vector<runledger::LedgerEntry> entries =
            runledger::parseLedger(buffer.str());
        if (!tool_filter.empty()) {
            std::vector<runledger::LedgerEntry> kept;
            for (auto &entry : entries)
                if (entry.tool == tool_filter)
                    kept.push_back(std::move(entry));
            entries = std::move(kept);
        }
        std::printf("perf_trend: %zu ledger entr%s from %s\n",
                    entries.size(), entries.size() == 1 ? "y" : "ies",
                    ledger_path.c_str());
        const std::vector<runledger::ToolTrend> trends =
            runledger::ledgerTrends(entries, options);
        std::fputs(runledger::trendReport(trends, options).c_str(),
                   stdout);
        for (const runledger::ToolTrend &trend : trends) {
            if (trend.anyRegression()) {
                std::printf("perf_trend FAILED: regression in at least "
                            "one phase\n");
                return 1;
            }
        }
        std::printf("perf_trend OK\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
