/**
 * @file
 * perf_check -- fail CI when a tracked phase regresses against a
 * committed baseline perf record.
 *
 *   perf_check --baseline FILE --current FILE
 *              [--max-regression R] [--min-seconds S]
 *              [--allow-simd-mismatch]
 *
 * Both files are `BENCH_<name>.json` records (docs/FILE_FORMATS.md,
 * schemas youtiao-perf-1 through -4 accepted). Every baseline phase
 * with at least S seconds of wall time (default 0.01 -- faster phases
 * are timing noise) is compared; the check fails when any current
 * phase exceeds baseline * (1 + R) (default R = 0.25). Baseline phases
 * the current run never recorded are hard failures, each named in a
 * MISSING line: a silently dropped phase would otherwise exempt itself
 * from its own budget forever (a renamed phase must update the
 * baseline in the same PR). Phases that got notably *faster* (below
 * baseline * (1 - R)) are reported as IMPROVEMENT lines so a stale
 * baseline gets refreshed instead of hiding later regressions inside
 * the slack; improvements never fail the check.
 *
 * When both records carry a perf-4 `simd_level` and the levels differ,
 * the comparison is refused (exit 2): the two runs timed different
 * kernels, so a ratio between them is not a regression signal.
 * `--allow-simd-mismatch` overrides this for intentional cross-level
 * comparisons (e.g. quantifying the native-vs-scalar speedup in CI).
 *
 * Exit codes: 0 within budget, 1 regression or missing phase found,
 * 2 usage / bad input / refused SIMD-level mismatch.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli_parse.hpp"
#include "common/error.hpp"
#include "common/perf_record.hpp"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --baseline FILE --current FILE\n"
                 "          [--max-regression R] [--min-seconds S]\n"
                 "          [--allow-simd-mismatch]\n"
                 "  R: allowed slowdown fraction (default 0.25 = +25%%)\n"
                 "  S: ignore phases faster than S seconds in the "
                 "baseline (default 0.01)\n"
                 "  --allow-simd-mismatch: compare records taken at\n"
                 "     different SIMD dispatch levels anyway\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace youtiao;

    std::string baseline_path;
    std::string current_path;
    double max_regression = 0.25;
    double min_seconds = 0.01;
    bool allow_simd_mismatch = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            if (arg == "--baseline")
                baseline_path = next();
            else if (arg == "--current")
                current_path = next();
            else if (arg == "--max-regression")
                max_regression =
                    parsePositiveDoubleArg(next(), "--max-regression");
            else if (arg == "--min-seconds")
                min_seconds =
                    parsePositiveDoubleArg(next(), "--min-seconds");
            else if (arg == "--allow-simd-mismatch")
                allow_simd_mismatch = true;
            else
                usage(argv[0]);
        }
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (baseline_path.empty() || current_path.empty())
        usage(argv[0]);

    try {
        const PerfRecord baseline = loadPerfRecord(baseline_path);
        const PerfRecord current = loadPerfRecord(current_path);
        if (baseline.benchmark != current.benchmark)
            std::fprintf(stderr,
                         "warning: comparing different benchmarks "
                         "('%s' vs '%s')\n",
                         baseline.benchmark.c_str(),
                         current.benchmark.c_str());

        // A scalar-vs-avx2 ratio measures the dispatch level, not a
        // code change; refuse it unless the caller asked for exactly
        // that comparison. Records predating perf-4 carry no level.
        if (baseline.simdLevel.has_value() &&
            current.simdLevel.has_value() &&
            *baseline.simdLevel != *current.simdLevel) {
            if (!allow_simd_mismatch) {
                std::fprintf(stderr,
                             "error: SIMD level mismatch (baseline "
                             "'%s' vs current '%s'); rerun with "
                             "YOUTIAO_SIMD matching the baseline or "
                             "pass --allow-simd-mismatch\n",
                             baseline.simdLevel->c_str(),
                             current.simdLevel->c_str());
                return 2;
            }
            std::printf("note: comparing across SIMD levels "
                        "('%s' baseline vs '%s' current)\n",
                        baseline.simdLevel->c_str(),
                        current.simdLevel->c_str());
        }

        // Peak RSS is informational: null (platform could not measure)
        // means "not comparable", never a zero-byte measurement.
        if (baseline.peakRssBytes.has_value() &&
            current.peakRssBytes.has_value()) {
            std::printf("peak RSS %llu -> %llu bytes\n",
                        static_cast<unsigned long long>(
                            *baseline.peakRssBytes),
                        static_cast<unsigned long long>(
                            *current.peakRssBytes));
        } else {
            std::printf("peak RSS not comparable (unmeasured on at "
                        "least one side)\n");
        }

        const PerfComparison cmp = comparePerfRecords(
            baseline, current, max_regression, min_seconds);
        for (const std::string &name : cmp.missingPhases)
            std::printf("MISSING    %-40s in baseline but not in "
                        "current run\n",
                        name.c_str());
        std::printf("perf_check %s: %zu phase(s) compared "
                    "(budget +%.0f%%, floor %gs)\n",
                    current.benchmark.c_str(), cmp.comparedPhases,
                    max_regression * 100.0, min_seconds);
        for (const auto &r : cmp.improvements)
            std::printf("IMPROVEMENT %-40s %.4fs -> %.4fs (%.0f%%)\n",
                        r.phase.c_str(), r.baselineSeconds,
                        r.currentSeconds, (1.0 - r.ratio) * 100.0);
        if (!cmp.improvements.empty())
            std::printf("note: %zu phase(s) are notably faster than "
                        "the baseline; consider refreshing "
                        "bench/baselines/ so the budget stays tight\n",
                        cmp.improvements.size());
        if (cmp.regressions.empty() && cmp.missingPhases.empty()) {
            std::printf("perf_check OK\n");
            return 0;
        }
        for (const auto &r : cmp.regressions)
            std::printf("REGRESSION %-40s %.4fs -> %.4fs (%.0f%%)\n",
                        r.phase.c_str(), r.baselineSeconds,
                        r.currentSeconds, (r.ratio - 1.0) * 100.0);
        if (!cmp.missingPhases.empty())
            std::printf("perf_check FAILED: %zu baseline phase(s) "
                        "missing from the current run (update the "
                        "baseline if a phase was renamed)\n",
                        cmp.missingPhases.size());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
