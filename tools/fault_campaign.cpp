/**
 * @file
 * fault_campaign -- sweep seeded chip defects (and optional fault
 * injection) over the robust design pipeline and emit a JSON record.
 *
 *   fault_campaign [--rates R1,R2,...] [--seeds N] [--base-seed S]
 *                  [--topology NAME] [--rows N] [--cols N] [--chip FILE]
 *                  [--inject-faults SPEC] [--no-route] [--out FILE]
 *                  [--deadline SECONDS] [--checkpoint DIR] [--resume]
 *                  [--profile] [--trace FILE] [--log-level LEVEL]
 *
 * Every (rate, seed) cell generates a random defect set, applies it to
 * the chip, designs the degraded chip with the graceful-degradation
 * pipeline, routes + DRC-checks the result, and records either a clean
 * design or a structured failure -- never a crash. The campaign record
 * ("youtiao-fault-campaign-1", docs/FAULT_INJECTION.md) goes to --out
 * (default fault_campaign.json); a human summary goes to stdout.
 *
 * Observability: --profile prints the metrics phase table, --trace
 * writes a Chrome trace of the campaign spans, the flight recorder is
 * armed (FLIGHT_fault_campaign.json on a crash or DesignError, see
 * common/flight.hpp), YOUTIAO_WATCHDOG starts the resource sampler, and
 * when $YOUTIAO_RUN_LEDGER is set every campaign appends a run manifest
 * so sweeps are trend-analyzable with perf_trend.
 *
 * Robustness: --deadline SECONDS arms a cooperative deadline
 * (common/cancel.hpp) -- the sweep aborts between cells with a flight
 * dump and exit code 3. --checkpoint DIR journals every finished cell
 * (design, route, DRC verdict, fault counters); --resume replays a
 * matching journal and fast-forwards the fault-injection counters, so
 * the finished record is byte-identical to an uninterrupted sweep. The
 * campaign JSON is written atomically (temp + fsync + rename).
 *
 * Exit codes: 0 every run accounted for (design DRC-clean or structured
 * failure), 1 some run was not, 2 usage / bad argument, 3 cancelled /
 * deadline exceeded.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chip/chip_io.hpp"
#include "chip/topology_builder.hpp"
#include "common/atomic_io.hpp"
#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/cli_parse.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/flight.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/runledger.hpp"
#include "common/trace.hpp"
#include "common/watchdog.hpp"
#include "core/fault_campaign.hpp"

namespace {

using namespace youtiao;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--rates R1,R2,...] [--seeds N] [--base-seed S]\n"
        "          [--topology square|hexagon|heavy-square|heavy-hexagon|"
        "low-density|grid]\n"
        "          [--rows N] [--cols N] [--chip FILE]\n"
        "          [--inject-faults SPEC] [--no-route] [--out FILE]\n"
        "          [--deadline SECONDS] [--checkpoint DIR] [--resume]\n"
        "          [--profile] [--trace FILE]\n"
        "          [--log-level error|warn|info|debug]\n"
        "  --rates: comma-separated defect rates in [0,1] "
        "(default 0.01,0.05,0.10)\n"
        "  --seeds: seeds per rate (default 8)\n"
        "  --inject-faults: fault spec site[:rate[:seed]][,...] "
        "(also YOUTIAO_FAULTS)\n"
        "  --no-route: skip routing + DRC of surviving designs\n"
        "  --out: campaign JSON path (default fault_campaign.json)\n"
        "  --deadline: cancel the sweep after SECONDS (exit 3)\n"
        "  --checkpoint: journal finished cells into DIR\n"
        "  --resume: replay a matching journal from --checkpoint DIR\n"
        "  --profile: print the phase/counter profile after the sweep\n"
        "  --trace: write a Chrome trace of the campaign to FILE\n",
        argv0);
    std::exit(2);
}

std::vector<double>
parseRates(const char *text)
{
    std::vector<double> rates;
    std::string value;
    std::istringstream in(text);
    while (std::getline(in, value, ',')) {
        requireConfig(!value.empty(), "--rates has an empty entry");
        char *end = nullptr;
        const double rate = std::strtod(value.c_str(), &end);
        requireConfig(end != nullptr && *end == '\0' && rate >= 0.0 &&
                          rate <= 1.0,
                      "--rates entries must be numbers in [0, 1], got '" +
                          value + "'");
        rates.push_back(rate);
    }
    requireConfig(!rates.empty(), "--rates needs at least one rate");
    return rates;
}

} // namespace

int
runCampaign(int argc, char **argv, runledger::Recorder &recorder)
{
    FaultCampaignConfig campaign;
    std::string topology = "grid";
    std::size_t rows = 5, cols = 5;
    std::string chip_path;
    std::string out_path = "fault_campaign.json";
    std::string trace_path;
    bool profile = false;
    double deadline_s = 0.0;
    std::string checkpoint_dir;
    bool resume = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            if (arg == "--rates")
                campaign.defectRates = parseRates(next());
            else if (arg == "--seeds")
                campaign.seedsPerRate = parseSizeArg(next(), "--seeds");
            else if (arg == "--base-seed")
                campaign.baseSeed = parseUint64Arg(next(), "--base-seed");
            else if (arg == "--topology")
                topology = next();
            else if (arg == "--rows")
                rows = parseSizeArg(next(), "--rows");
            else if (arg == "--cols")
                cols = parseSizeArg(next(), "--cols");
            else if (arg == "--chip")
                chip_path = next();
            else if (arg == "--inject-faults")
                campaign.faultSpec = next();
            else if (arg == "--no-route")
                campaign.route = false;
            else if (arg == "--out")
                out_path = next();
            else if (arg == "--profile")
                profile = true;
            else if (arg == "--trace")
                trace_path = next();
            else if (arg == "--deadline")
                deadline_s =
                    parsePositiveDoubleArg(next(), "--deadline");
            else if (arg == "--checkpoint")
                checkpoint_dir = next();
            else if (arg == "--resume")
                resume = true;
            else if (arg == "--log-level") {
                const char *name = next();
                if (!log::setLevelByName(name)) {
                    std::fprintf(stderr,
                                 "error: unknown log level '%s'\n", name);
                    return 2;
                }
            } else
                usage(argv[0]);
        }
        // The environment spec applies when no explicit flag was given,
        // mirroring how the CLI arms fault injection.
        if (campaign.faultSpec.empty()) {
            if (const char *env = std::getenv("YOUTIAO_FAULTS"))
                campaign.faultSpec = env;
        }
        if (!campaign.faultSpec.empty())
            fault::configure(campaign.faultSpec); // validate grammar now
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (resume && checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "error: --resume requires --checkpoint DIR\n");
        return 2;
    }

    TopologyFamily family;
    if (topology == "square")
        family = TopologyFamily::Square;
    else if (topology == "hexagon")
        family = TopologyFamily::Hexagon;
    else if (topology == "heavy-square")
        family = TopologyFamily::HeavySquare;
    else if (topology == "heavy-hexagon")
        family = TopologyFamily::HeavyHexagon;
    else if (topology == "low-density")
        family = TopologyFamily::LowDensity;
    else if (topology == "grid")
        family = TopologyFamily::SquareGrid;
    else
        usage(argv[0]);

    watchdog::startFromEnv();
    if (!trace_path.empty())
        trace::Tracer::global().enable();

    try {
        ChipTopology chip;
        if (chip_path.empty()) {
            chip = makeTopology(family, rows, cols);
        } else {
            std::ifstream in(chip_path);
            if (!in) {
                std::fprintf(stderr, "error: cannot read %s\n",
                             chip_path.c_str());
                return 2;
            }
            try {
                chip = loadChip(in);
            } catch (const ConfigError &e) {
                // A chip file that does not parse is a bad argument.
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
        }
        campaign.designer.seed = campaign.baseSeed;
        std::ostringstream cfg;
        cfg << "rates=";
        for (double rate : campaign.defectRates)
            cfg << rate << ",";
        cfg << "seeds=" << campaign.seedsPerRate
            << ",route=" << campaign.route
            << ",faults=" << campaign.faultSpec;
        if (runledger::ledgerConfigured()) {
            recorder.hashBytes("chip", chipToString(chip));
            recorder.setHash("seed",
                             std::to_string(campaign.baseSeed));
            recorder.hashBytes("config", cfg.str());
        }

        if (deadline_s > 0.0)
            cancel::armDeadline(deadline_s);
        if (!checkpoint_dir.empty()) {
            try {
                checkpoint::open(
                    checkpoint_dir, "fault_campaign",
                    {{"chip", runledger::fnv1aHex(chipToString(chip))},
                     {"seed", std::to_string(campaign.baseSeed)},
                     {"config", runledger::fnv1aHex(cfg.str())}},
                    resume);
            } catch (const ConfigError &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
            const checkpoint::Stats st = checkpoint::stats();
            if (resume)
                std::printf("checkpoint: resumed %zu snapshot(s) from "
                            "%s (%zu rejected)\n",
                            st.snapshotsLoaded, checkpoint_dir.c_str(),
                            st.snapshotsRejected);
        }
        struct CheckpointCloser {
            ~CheckpointCloser() { checkpoint::close(); }
        } checkpoint_closer;

        const FaultCampaignSummary summary =
            runFaultCampaign(chip, campaign);

        recorder.addNote("runs=" + std::to_string(summary.runs.size()) +
                         " ok=" + std::to_string(summary.okCount) +
                         " failed=" + std::to_string(summary.failedCount) +
                         " degraded=" +
                         std::to_string(summary.degradedCount));

        io::atomicWriteFile(out_path, summary.toJson());

        std::printf("-- fault campaign --\n"
                    "chip                   %s (%zu qubits)\n"
                    "runs                   %zu (%zu rates x %zu seeds)\n"
                    "ok                     %zu\n"
                    "degraded               %zu\n"
                    "structured failures    %zu\n"
                    "drc violations         %zu\n"
                    "record                 %s\n",
                    summary.chipName.c_str(), summary.chipQubits,
                    summary.runs.size(), campaign.defectRates.size(),
                    campaign.seedsPerRate, summary.okCount,
                    summary.degradedCount, summary.failedCount,
                    summary.drcViolationCount, out_path.c_str());
        if (profile)
            std::fputs(metrics::phaseTable().c_str(), stdout);
        if (!trace_path.empty()) {
            trace::Tracer::global().disable();
            if (!trace::Tracer::global().writeJson(trace_path)) {
                std::fprintf(stderr, "error: cannot write trace %s\n",
                             trace_path.c_str());
                return 1;
            }
        }
        if (!summary.allRunsAccounted()) {
            std::fprintf(stderr,
                         "error: some runs ended neither in a DRC-clean "
                         "design nor a structured failure\n");
            return 1;
        }
    } catch (const cancel::Cancelled &e) {
        flight::dump("cancelled");
        log::error("campaign cancelled", {{"where", e.where()}});
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    } catch (const std::exception &e) {
        log::error("campaign failed", {{"what", e.what()}});
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    flight::install("fault_campaign");
    runledger::Recorder recorder("fault_campaign", argc, argv);
    const int status = runCampaign(argc, argv, recorder);
    watchdog::stop();
    recorder.setExitStatus(status);
    recorder.finish();
    return status;
}
